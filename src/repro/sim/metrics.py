"""Measurement helpers for the benchmark harness.

Latency distributions (Fig 7's p95, Fig 8's validation-latency CDFs) and
throughput counters, kept dependency-light (numpy only for array sorting).

:class:`RunMetrics` is the per-run record the drivers fill in.  With the
observability layer enabled it is re-expressible over the metrics
registry: :meth:`RunMetrics.export_to` writes the aggregates into a
``repro.obs.MetricsRegistry`` (the ``run_*`` metric families), and
:class:`RunMetricsView` reads the same properties back out of a registry
or a reloaded snapshot — so exported artifacts and in-process results
answer identical queries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np


class Histogram:
    """Accumulates samples; answers mean/percentile/min/max queries.

    The sorted sample array is cached and invalidated on mutation, so a
    ``summary()`` (one query per percentile property) sorts once instead of
    once per property.
    """

    def __init__(self):
        self._values: list[float] = []
        self._sorted: np.ndarray | None = None

    def add(self, value: float) -> None:
        self._values.append(value)
        self._sorted = None

    def extend(self, values) -> None:
        self._values.extend(values)
        self._sorted = None

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's samples into this one.

        Exact and associative: queries over the merged histogram equal
        queries over a single histogram fed both sample streams, which is
        what fleet-scale cross-shard rollups rely on.
        """
        self._values.extend(other._values)
        self._sorted = None

    def _array(self) -> np.ndarray:
        if self._sorted is None:
            self._sorted = np.sort(np.asarray(self._values, dtype=float))
        return self._sorted

    def values(self) -> list[float]:
        """The raw samples, in insertion order (export helpers)."""
        return list(self._values)

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def mean(self) -> float:
        if not self._values:
            return 0.0
        return float(self._array().mean())

    def percentile(self, p: float) -> float:
        """The p-th percentile (p in [0, 100]), linear interpolation."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile {p} out of range")
        if not self._values:
            return 0.0
        ordered = self._array()
        rank = (len(ordered) - 1) * (p / 100.0)
        low = math.floor(rank)
        high = math.ceil(rank)
        if low == high:
            return float(ordered[low])
        fraction = rank - low
        return float(ordered[low] * (1.0 - fraction) + ordered[high] * fraction)

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    @property
    def max(self) -> float:
        return float(self._array()[-1]) if self._values else 0.0

    @property
    def min(self) -> float:
        return float(self._array()[0]) if self._values else 0.0

    def summary(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.max,
        }


@dataclass
class RunMetrics:
    """Everything one simulated run reports."""

    #: completed operations (requests / tasks)
    operations: int = 0
    #: virtual seconds elapsed
    duration: float = 0.0
    #: per-request latency (virtual seconds)
    request_latency: Histogram = field(default_factory=Histogram)
    #: closure-validation latency: closure completion → validation done
    validation_latency: Histogram = field(default_factory=Histogram)
    #: peak versioned-heap footprint in bytes (Orthrus memory accounting)
    peak_versioned_bytes: int = 0
    #: peak vanilla (live-only) footprint in bytes
    peak_live_bytes: int = 0
    #: logs validated / skipped by the sampler
    validated: int = 0
    skipped: int = 0
    #: SDC detections flagged during the run
    detections: int = 0

    def merge(self, other: "RunMetrics") -> None:
        """Fold another run's record into this one (cross-shard rollups).

        Counts add; latency histograms pool their samples; durations take
        the max (shards run concurrently in virtual time, not serially);
        peak footprints add (each shard's heap exists simultaneously).
        """
        self.operations += other.operations
        self.duration = max(self.duration, other.duration)
        self.request_latency.merge(other.request_latency)
        self.validation_latency.merge(other.validation_latency)
        self.peak_versioned_bytes += other.peak_versioned_bytes
        self.peak_live_bytes += other.peak_live_bytes
        self.validated += other.validated
        self.skipped += other.skipped
        self.detections += other.detections

    @property
    def throughput(self) -> float:
        """Operations per virtual second."""
        if self.duration <= 0:
            return 0.0
        return self.operations / self.duration

    @property
    def memory_overhead(self) -> float:
        """Peak versioned footprint relative to the vanilla footprint."""
        if self.peak_live_bytes == 0:
            return 0.0
        return self.peak_versioned_bytes / self.peak_live_bytes - 1.0

    @property
    def sampling_fraction(self) -> float:
        total = self.validated + self.skipped
        if total == 0:
            return 1.0
        return self.validated / total

    def export_to(self, registry) -> None:
        """Write this run's aggregates into an obs ``MetricsRegistry``.

        Creates the ``run_*`` metric families :class:`RunMetricsView` reads
        back; the latency distributions become streaming histograms (exact
        count/sum/min/max, bucketed percentiles).
        """
        registry.counter(
            "run_operations_total", help="completed operations"
        ).inc(self.operations)
        registry.gauge(
            "run_duration_seconds", help="virtual seconds elapsed"
        ).set(self.duration)
        registry.counter(
            "run_validated_total", help="logs validated during the run"
        ).inc(self.validated)
        registry.counter(
            "run_skipped_total", help="logs skipped by the sampler"
        ).inc(self.skipped)
        registry.counter(
            "run_detections_total", help="SDC detections during the run"
        ).inc(self.detections)
        registry.gauge(
            "run_peak_versioned_bytes", help="peak versioned-heap footprint"
        ).set(self.peak_versioned_bytes)
        registry.gauge(
            "run_peak_live_bytes", help="peak live-only footprint"
        ).set(self.peak_live_bytes)
        pairs = (
            ("run_request_latency_seconds", self.request_latency,
             "per-request latency"),
            ("run_validation_latency_seconds", self.validation_latency,
             "log enqueue to validation completion"),
        )
        for name, histogram, help_text in pairs:
            target = registry.histogram(name, help=help_text)
            for value in histogram.values():
                target.record(value)


class RunMetricsView:
    """A :class:`RunMetrics`-shaped read view over a metrics registry.

    Accepts a live ``repro.obs.MetricsRegistry`` or a reloaded snapshot
    (via ``MetricsRegistry.from_snapshot``); exposes the same property
    surface as :class:`RunMetrics`, so report code can consume either.
    """

    def __init__(self, registry):
        self._registry = registry

    @property
    def operations(self) -> int:
        return int(self._registry.value("run_operations_total"))

    @property
    def duration(self) -> float:
        return self._registry.value("run_duration_seconds")

    @property
    def validated(self) -> int:
        return int(self._registry.value("run_validated_total"))

    @property
    def skipped(self) -> int:
        return int(self._registry.value("run_skipped_total"))

    @property
    def detections(self) -> int:
        return int(self._registry.value("run_detections_total"))

    @property
    def peak_versioned_bytes(self) -> int:
        return int(self._registry.value("run_peak_versioned_bytes"))

    @property
    def peak_live_bytes(self) -> int:
        return int(self._registry.value("run_peak_live_bytes"))

    def _histogram(self, name: str):
        series = self._registry.series(name)
        if not series:
            from repro.obs.metrics import StreamingHistogram

            return StreamingHistogram()
        return series[0][1]

    @property
    def request_latency(self):
        return self._histogram("run_request_latency_seconds")

    @property
    def validation_latency(self):
        return self._histogram("run_validation_latency_seconds")

    @property
    def throughput(self) -> float:
        duration = self.duration
        if duration <= 0:
            return 0.0
        return self.operations / duration

    @property
    def memory_overhead(self) -> float:
        live = self.peak_live_bytes
        if live == 0:
            return 0.0
        return self.peak_versioned_bytes / live - 1.0

    @property
    def sampling_fraction(self) -> float:
        total = self.validated + self.skipped
        if total == 0:
            return 1.0
        return self.validated / total


def slowdown(vanilla_throughput: float, system_throughput: float) -> float:
    """Relative time overhead of a system versus vanilla (0.04 = 4%)."""
    if system_throughput <= 0:
        return math.inf
    return vanilla_throughput / system_throughput - 1.0
