"""Setup shim.

This environment ships a setuptools without the ``wheel`` package, so PEP
660 editable installs (``pip install -e .`` via pyproject only) fail with
``invalid command 'bdist_wheel'``.  Keeping a classic ``setup.py`` lets
``pip install -e . --no-build-isolation`` fall back to the legacy editable
path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
