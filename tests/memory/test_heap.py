"""Versioned-heap semantics: versions, windows, reclamation, accounting."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import HeapError, ReclaimedVersionError
from repro.memory.heap import PrivateHeap, VersionedHeap


@pytest.fixture
def heap():
    return VersionedHeap()


class TestAllocation:
    def test_allocate_returns_distinct_ids(self, heap):
        a = heap.allocate("a")
        b = heap.allocate("b")
        assert a != b

    def test_latest_returns_payload(self, heap):
        obj = heap.allocate({"k": 1})
        assert heap.latest(obj).value == {"k": 1}

    def test_checksum_attached(self, heap):
        obj = heap.allocate("payload")
        assert heap.latest(obj).checksum is not None

    def test_checksums_can_be_disabled(self):
        heap = VersionedHeap(checksums=False)
        obj = heap.allocate("payload")
        assert heap.latest(obj).checksum is None

    def test_checksum_override_installed_verbatim(self, heap):
        obj = heap.allocate("payload", checksum_override=0x1234)
        assert heap.latest(obj).checksum == 0x1234

    def test_unknown_object_raises(self, heap):
        with pytest.raises(HeapError):
            heap.latest(999)


class TestVersioning:
    def test_store_creates_new_version(self, heap):
        obj = heap.allocate(1)
        v1 = heap.latest(obj)
        v2 = heap.store(obj, 2)
        assert v2.version_id > v1.version_id
        assert heap.latest(obj).value == 2

    def test_old_version_still_readable_by_id(self, heap):
        obj = heap.allocate(1)
        v1 = heap.latest(obj)
        heap.store(obj, 2)
        assert heap.version(v1.version_id).value == 1

    def test_store_closes_previous_window(self, heap):
        obj = heap.allocate(1)
        v1 = heap.latest(obj)
        assert v1.live
        heap.store(obj, 2)
        assert not v1.live
        assert v1.superseded_at is not None

    def test_windows_are_ordered(self, heap):
        obj = heap.allocate(1)
        v1 = heap.latest(obj)
        v2 = heap.store(obj, 2)
        assert v1.created_at < v2.created_at
        assert v1.superseded_at == v2.created_at

    def test_visible_at_returns_correct_snapshot(self, heap):
        obj = heap.allocate("first")
        t1 = heap.latest(obj).created_at
        heap.store(obj, "second")
        t2 = heap.latest(obj).created_at
        assert heap.visible_at(obj, t1).value == "first"
        assert heap.visible_at(obj, t2).value == "second"

    def test_visible_at_before_creation_raises(self, heap):
        obj = heap.allocate("x")
        created = heap.latest(obj).created_at
        with pytest.raises(HeapError):
            heap.visible_at(obj, created - 1)


class TestDelete:
    def test_delete_closes_window(self, heap):
        obj = heap.allocate("x")
        version = heap.latest(obj)
        heap.delete(obj)
        assert not version.live
        assert not heap.exists(obj)

    def test_load_after_delete_raises(self, heap):
        obj = heap.allocate("x")
        heap.delete(obj)
        with pytest.raises(HeapError):
            heap.latest(obj)

    def test_store_after_delete_raises(self, heap):
        obj = heap.allocate("x")
        heap.delete(obj)
        with pytest.raises(HeapError):
            heap.store(obj, "y")

    def test_double_delete_raises(self, heap):
        obj = heap.allocate("x")
        heap.delete(obj)
        with pytest.raises(HeapError):
            heap.delete(obj)


class TestReclamation:
    def test_reclaim_before_watermark(self, heap):
        obj = heap.allocate(1)
        v1 = heap.latest(obj)
        heap.store(obj, 2)
        count = heap.reclaim_before(math.inf)
        assert count == 1
        assert v1.reclaimed

    def test_live_versions_never_reclaimed(self, heap):
        obj = heap.allocate(1)
        heap.store(obj, 2)
        heap.reclaim_before(math.inf)
        assert heap.latest(obj).value == 2

    def test_reclaim_respects_watermark(self, heap):
        obj = heap.allocate(1)
        heap.store(obj, 2)
        closed_at = heap.version(heap.latest(obj).version_id).created_at
        assert heap.reclaim_before(closed_at) == 0  # window ends AT closed_at
        assert heap.reclaim_before(closed_at + 0.5) == 1

    def test_reading_reclaimed_version_raises(self, heap):
        obj = heap.allocate(1)
        v1 = heap.latest(obj)
        heap.store(obj, 2)
        heap.reclaim_before(math.inf)
        with pytest.raises((HeapError, ReclaimedVersionError)):
            heap.version(v1.version_id)

    def test_reclaim_updates_accounting(self, heap):
        obj = heap.allocate("abcdefgh")
        heap.store(obj, "ijklmnop")
        before = heap.versioned_bytes
        heap.reclaim_before(math.inf)
        assert heap.versioned_bytes < before
        assert heap.stale_bytes == 0
        assert heap.versioned_bytes == heap.live_bytes + heap.header_bytes


class TestAccounting:
    def test_live_bytes_tracks_only_live(self, heap):
        obj = heap.allocate("x" * 100)
        first = heap.live_bytes
        heap.store(obj, "y" * 100)
        assert heap.live_bytes == pytest.approx(first, abs=8)
        assert heap.versioned_bytes > heap.live_bytes

    def test_memory_overhead_is_header_only_when_no_stale(self, heap):
        heap.allocate("x" * 100)
        expected = heap.header_bytes / heap.live_bytes
        assert heap.memory_overhead == pytest.approx(expected)
        assert heap.stale_bytes == 0

    def test_memory_overhead_grows_with_stale_versions(self, heap):
        obj = heap.allocate("x" * 50)
        for _ in range(4):
            heap.store(obj, "x" * 50)
        assert heap.memory_overhead > 1.0

    def test_counters(self, heap):
        obj = heap.allocate(1)
        heap.store(obj, 2)
        heap.store(obj, 3)
        assert heap.versions_created == 3
        heap.reclaim_before(math.inf)
        assert heap.versions_reclaimed == 2


class TestPrivateHeap:
    def test_shadow_allocation_gets_negative_ids(self):
        private = PrivateHeap()
        a = private.allocate("a")
        b = private.allocate("b")
        assert a < 0 and b < 0 and a != b

    def test_writes_recorded_in_order(self):
        private = PrivateHeap()
        a = private.allocate("a")
        private.store(a, "a2")
        private.store(7, "shared-write")
        assert [value for _, value in private.writes] == ["a", "a2", "shared-write"]

    def test_load_sees_latest_store(self):
        private = PrivateHeap()
        private.store(5, "v1")
        private.store(5, "v2")
        assert private.load(5) == "v2"

    def test_delete_then_load_raises(self):
        private = PrivateHeap()
        private.store(5, "v")
        private.delete(5)
        with pytest.raises(HeapError):
            private.load(5)

    def test_has(self):
        private = PrivateHeap()
        assert not private.has(1)
        private.store(1, "x")
        assert private.has(1)


@settings(max_examples=50)
@given(st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=60))
def test_heap_matches_dict_model(updates):
    """Versioned heap's live view must behave like a plain dict."""
    heap = VersionedHeap()
    model: dict[int, int] = {}
    handles: dict[int, int] = {}
    for step, key in enumerate(updates):
        if key not in handles:
            handles[key] = heap.allocate(step)
        else:
            heap.store(handles[key], step)
        model[key] = step
    for key, obj in handles.items():
        assert heap.latest(obj).value == model[key]


@settings(max_examples=50)
@given(st.lists(st.integers(min_value=0, max_value=10), min_size=1, max_size=40))
def test_reclamation_never_touches_live_versions(keys):
    heap = VersionedHeap()
    handles = {}
    for step, key in enumerate(keys):
        if key not in handles:
            handles[key] = heap.allocate(step)
        else:
            heap.store(handles[key], step)
        heap.reclaim_before(math.inf)
    for key, obj in handles.items():
        heap.latest(obj)  # must not raise
    assert heap.stale_bytes == 0
