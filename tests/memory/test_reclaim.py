"""Reclamation manager: windows, watermarks, batching (§3.6)."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.memory.heap import VersionedHeap
from repro.memory.reclaim import ReclamationManager


@pytest.fixture
def heap():
    return VersionedHeap()


def manager(heap, batch=1):
    return ReclamationManager(heap, batch_size=batch)


class TestWatermark:
    def test_no_open_windows_means_infinite_watermark(self, heap):
        assert manager(heap).watermark == math.inf

    def test_watermark_is_earliest_open_start(self, heap):
        gc = manager(heap)
        gc.closure_started(1, 10.0)
        gc.closure_started(2, 20.0)
        assert gc.watermark == 10.0

    def test_watermark_advances_when_earliest_finishes(self, heap):
        gc = manager(heap)
        gc.closure_started(1, 10.0)
        gc.closure_started(2, 20.0)
        gc.closure_finished(1)
        assert gc.watermark == 20.0

    def test_out_of_order_completion(self, heap):
        gc = manager(heap)
        gc.closure_started(1, 10.0)
        gc.closure_started(2, 20.0)
        gc.closure_started(3, 30.0)
        gc.closure_finished(2)  # out-of-order validation
        assert gc.watermark == 10.0
        gc.closure_finished(1)
        assert gc.watermark == 30.0

    def test_non_monotonic_starts_rejected(self, heap):
        gc = manager(heap)
        gc.closure_started(1, 10.0)
        with pytest.raises(ConfigurationError):
            gc.closure_started(2, 5.0)


class TestReclamation:
    def test_stale_version_reclaimed_after_all_windows_close(self, heap):
        gc = manager(heap)
        obj = heap.allocate(1)
        gc.closure_started(1, heap.latest(obj).created_at)
        heap.store(obj, 2)
        old_version_count = len(heap)
        assert gc.closure_finished(1) == 1
        assert len(heap) == old_version_count - 1

    def test_version_kept_while_early_closure_pending(self, heap):
        gc = manager(heap)
        obj = heap.allocate(1)
        v1 = heap.latest(obj)
        gc.closure_started(1, v1.created_at)  # may reference v1
        heap.store(obj, 2)
        gc.closure_started(2, heap.latest(obj).created_at)
        assert gc.closure_finished(2) == 0  # closure 1 still open
        assert not v1.reclaimed

    def test_batching_defers_passes(self, heap):
        gc = manager(heap, batch=3)
        obj = heap.allocate(1)
        for seq in range(1, 4):
            gc.closure_started(seq, heap.latest(obj).created_at)
            heap.store(obj, seq)
        assert gc.closure_finished(1) == 0
        assert gc.closure_finished(2) == 0
        assert gc.closure_finished(3) >= 1
        assert gc.reclaim_passes == 1

    def test_reclaim_now_forces_pass(self, heap):
        gc = manager(heap, batch=100)
        obj = heap.allocate(1)
        heap.store(obj, 2)
        assert gc.reclaim_now() == 1

    def test_invalid_batch_size(self, heap):
        with pytest.raises(ConfigurationError):
            ReclamationManager(heap, batch_size=0)

    def test_open_windows_counter(self, heap):
        gc = manager(heap)
        gc.closure_started(1, 1.0)
        gc.closure_started(2, 2.0)
        assert gc.open_windows == 2
        gc.closure_finished(1)
        assert gc.open_windows == 1
