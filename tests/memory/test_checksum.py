"""CRC-16 and canonical serialization tests."""

import pytest
from hypothesis import given, strategies as st

from repro.memory.checksum import checksum_of, crc16, serialize


class TestCrc16:
    def test_known_vector(self):
        # CRC-16/CCITT-FALSE("123456789") is the standard check value.
        assert crc16(b"123456789") == 0x29B1

    def test_empty_input(self):
        assert crc16(b"") == 0xFFFF

    def test_single_bit_sensitivity(self):
        base = crc16(b"hello world")
        flipped = crc16(b"hello worle")
        assert base != flipped

    def test_range(self):
        assert 0 <= crc16(b"anything") <= 0xFFFF


class TestSerialize:
    def test_type_tags_disambiguate(self):
        assert serialize(1) != serialize(1.0)
        assert serialize(True) != serialize(1)
        assert serialize("1") != serialize(b"1")
        assert serialize((1,)) != serialize([1])

    def test_none(self):
        assert serialize(None) == b"N"

    def test_nested_structures(self):
        value = {"k": [1, (2.5, "x")], "j": None}
        assert serialize(value) == serialize({"j": None, "k": [1, (2.5, "x")]})

    def test_float_bit_exactness(self):
        assert serialize(0.0) != serialize(-0.0)
        assert serialize(float("nan")) == serialize(float("nan"))

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            serialize(object())

    def test_user_data_payload_hook(self):
        class Widget:
            def __orthrus_payload__(self):
                return ("widget", 7)

        assert serialize(Widget()) == b"O" + serialize(("widget", 7))


class TestChecksumOf:
    def test_equal_values_equal_checksums(self):
        assert checksum_of([1, "two", 3.0]) == checksum_of([1, "two", 3.0])

    def test_different_values_usually_differ(self):
        assert checksum_of("payload-a") != checksum_of("payload-b")


@given(st.binary(max_size=256))
def test_crc_deterministic(data):
    assert crc16(data) == crc16(data)


@given(st.binary(min_size=1, max_size=64), st.integers(min_value=0, max_value=7))
def test_crc_detects_single_bit_flips(data, bit):
    corrupted = bytearray(data)
    corrupted[0] ^= 1 << bit
    assert crc16(bytes(corrupted)) != crc16(data)


payloads = st.recursive(
    st.none()
    | st.booleans()
    | st.integers()
    | st.floats(allow_nan=False)
    | st.text(max_size=20)
    | st.binary(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.tuples(children, children)
    | st.dictionaries(st.text(max_size=5), children, max_size=4),
    max_leaves=10,
)


@given(payloads)
def test_serialize_total_and_deterministic(value):
    assert serialize(value) == serialize(value)


@given(payloads, payloads)
def test_serialize_injective_on_samples(a, b):
    if a != b:
        assert serialize(a) != serialize(b)
