"""OrthrusPtr semantics in and out of execution contexts."""

import pytest

from repro.closures.context import ExecutionContext
from repro.closures.log import ClosureLog
from repro.errors import NoActiveContext
from repro.machine.core import Core
from repro.memory.heap import VersionedHeap
from repro.memory.pointer import OrthrusPtr, orthrus_new, orthrus_receive, ptr


@pytest.fixture
def heap():
    return VersionedHeap()


class TestUnmanagedAccess:
    def test_load_store_roundtrip(self, heap):
        handle = orthrus_new("v0", heap=heap)
        assert handle.load() == "v0"
        handle.store("v1")
        assert handle.load() == "v1"

    def test_store_creates_version(self, heap):
        handle = orthrus_new("v0", heap=heap)
        first = handle.version_id
        handle.store("v1")
        assert handle.version_id > first

    def test_delete(self, heap):
        handle = orthrus_new("x", heap=heap)
        handle.delete()
        assert not heap.exists(handle.obj_id)

    def test_new_without_heap_or_context_raises(self):
        with pytest.raises(ValueError):
            orthrus_new("x")

    def test_receive_requires_heap_outside_context(self):
        with pytest.raises(ValueError):
            orthrus_receive("x", 0x1234)

    def test_receive_installs_checksum(self, heap):
        handle = orthrus_receive("x", 0x1234, heap=heap)
        assert heap.latest(handle.obj_id).checksum == 0x1234


class TestIdentity:
    def test_equality_by_heap_and_id(self, heap):
        a = OrthrusPtr(heap, 1)
        b = OrthrusPtr(heap, 1)
        c = OrthrusPtr(heap, 2)
        assert a == b
        assert a != c
        assert a != OrthrusPtr(VersionedHeap(), 1)

    def test_hashable(self, heap):
        assert len({OrthrusPtr(heap, 1), OrthrusPtr(heap, 1)}) == 1

    def test_marker_attribute(self, heap):
        assert OrthrusPtr(heap, 1).__orthrus_ptr__ is True


class TestContextRouting:
    def test_ptr_helper_requires_context(self):
        with pytest.raises(NoActiveContext):
            ptr(1)

    def test_ptr_helper_rehydrates_inside_context(self, heap):
        obj = heap.allocate("payload")
        log = ClosureLog(seq=1, closure_name="op", caller="t")
        ctx = ExecutionContext(ExecutionContext.APP, Core(0), heap, log)
        with ctx:
            assert ptr(obj).load() == "payload"

    def test_load_routes_through_context(self, heap):
        obj = heap.allocate("original")
        handle = OrthrusPtr(heap, obj)
        log = ClosureLog(seq=1, closure_name="op", caller="t")
        ctx = ExecutionContext(ExecutionContext.APP, Core(0), heap, log)
        with ctx:
            handle.load()
        assert obj in log.inputs
