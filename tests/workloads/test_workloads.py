"""Workload generator tests: determinism, mix, skew."""

from collections import Counter

import pytest

from repro.workloads.alex import AlexWorkload
from repro.workloads.base import OpKind
from repro.workloads.cachelib import CacheLibWorkload
from repro.workloads.wordcount import WordCountCorpus, make_vocabulary
from repro.workloads.ycsb import YcsbWriteWorkload
from repro.workloads.zipf import ZipfSampler


class TestZipf:
    def test_deterministic_given_seed(self):
        a = ZipfSampler(100, 0.99, seed=5)
        b = ZipfSampler(100, 0.99, seed=5)
        assert [a.sample() for _ in range(50)] == [b.sample() for _ in range(50)]

    def test_different_seeds_differ(self):
        a = ZipfSampler(100, 0.99, seed=5)
        b = ZipfSampler(100, 0.99, seed=6)
        assert [a.sample() for _ in range(50)] != [b.sample() for _ in range(50)]

    def test_samples_in_range(self):
        sampler = ZipfSampler(10, 1.0, seed=1)
        ranks = sampler.sample_many(1000)
        assert ranks.min() >= 0 and ranks.max() < 10

    def test_cachelib_style_skew(self):
        # Top 20% of ranks should carry roughly 80% of the mass.
        sampler = ZipfSampler(1000, 1.2, seed=1)
        assert sampler.head_mass(0.2) > 0.7

    def test_zero_skew_is_uniformish(self):
        sampler = ZipfSampler(1000, 0.0, seed=1)
        assert sampler.head_mass(0.2) == pytest.approx(0.2, abs=0.01)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ZipfSampler(0)
        with pytest.raises(ValueError):
            ZipfSampler(10, -1.0)


class TestCacheLib:
    def test_deterministic(self):
        a = list(CacheLibWorkload(n_keys=50, seed=3).ops(100))
        b = list(CacheLibWorkload(n_keys=50, seed=3).ops(100))
        assert a == b

    def test_op_mix_close_to_configured(self):
        workload = CacheLibWorkload(n_keys=100, get_fraction=0.8, remove_fraction=0.05, seed=1)
        kinds = Counter(op.kind for op in workload.ops(3000))
        assert 0.75 < kinds[OpKind.GET] / 3000 < 0.85
        assert kinds[OpKind.SET] > 0
        assert kinds[OpKind.REMOVE] > 0

    def test_churn_rotates_hot_keys(self):
        workload = CacheLibWorkload(n_keys=100, churn_period=100, seed=1)
        first = {op.key for op in workload.ops(100)}
        later = {op.key for op in workload.ops(100)}
        assert first != later

    def test_invalid_mix_rejected(self):
        with pytest.raises(ValueError):
            CacheLibWorkload(get_fraction=0.99, remove_fraction=0.5)

    def test_values_sized(self):
        workload = CacheLibWorkload(n_keys=10, value_bytes=32, get_fraction=0.0,
                                    remove_fraction=0.0, seed=1)
        op = next(iter(workload.ops(1)))
        assert len(op.value) >= 32


class TestAlex:
    def test_mix_is_scan_update(self):
        workload = AlexWorkload(n_keys=100, scan_fraction=0.5, seed=2)
        kinds = Counter(op.kind for op in workload.ops(1000))
        assert set(kinds) == {OpKind.SCAN, OpKind.UPDATE}
        assert 0.4 < kinds[OpKind.SCAN] / 1000 < 0.6

    def test_scan_counts_bounded(self):
        workload = AlexWorkload(n_keys=100, max_scan=8, seed=2)
        for op in workload.ops(500):
            if op.kind is OpKind.SCAN:
                assert 2 <= op.count <= 8

    def test_initial_keys_distinct_sorted(self):
        keys = AlexWorkload(n_keys=100, seed=2).initial_keys()
        assert len(set(keys)) == 100
        assert keys == sorted(keys)

    def test_ops_target_loaded_keys(self):
        workload = AlexWorkload(n_keys=50, seed=2)
        loaded = set(workload.initial_keys())
        assert all(op.key in loaded for op in workload.ops(200))


class TestYcsb:
    def test_all_writes(self):
        workload = YcsbWriteWorkload(n_keys=100, seed=4)
        assert all(op.kind is OpKind.PUT for op in workload.ops(200))

    def test_values_unique_per_op(self):
        workload = YcsbWriteWorkload(n_keys=10, seed=4)
        values = [op.value for op in workload.ops(100)]
        assert len(set(values)) == 100

    def test_deterministic(self):
        a = [op.key for op in YcsbWriteWorkload(n_keys=100, seed=4).ops(100)]
        b = [op.key for op in YcsbWriteWorkload(n_keys=100, seed=4).ops(100)]
        assert a == b


class TestWordCount:
    def test_vocabulary_distinct(self):
        words = make_vocabulary(300)
        assert len(set(words)) == 300

    def test_chunks_cover_corpus(self):
        corpus = WordCountCorpus(n_words=1000, words_per_chunk=128, seed=1)
        total = sum(len(chunk.split()) for chunk in corpus.chunks())
        assert total == corpus.n_words

    def test_reference_counts_match_chunks(self):
        corpus = WordCountCorpus(n_words=500, vocabulary_size=50, seed=1)
        counted = Counter()
        for chunk in corpus.chunks():
            counted.update(chunk.split())
        assert dict(counted) == corpus.reference_counts()

    def test_zipfian_frequencies(self):
        corpus = WordCountCorpus(n_words=5000, vocabulary_size=100, skew=1.2, seed=1)
        counts = sorted(corpus.reference_counts().values(), reverse=True)
        assert counts[0] > counts[len(counts) // 2] * 3
