"""Property tests for the capacity-bounded consistent-hash ring.

The fleet issue mandates two properties: load balance within ±15% at
256 vnodes, and minimal key remap (< 2/N of the keyspace) when a node
is added or quarantined out.  Both are checked on the real assignment,
not a model of it.
"""

import numpy as np
import pytest

from repro.fleet.ring import DEFAULT_VNODES, ConsistentHashRing, mix64, name_token


def _names(n: int) -> list[str]:
    return [f"s{i:04d}" for i in range(n)]


class TestBalance:
    @pytest.mark.parametrize("shards", [4, 16, 64])
    def test_load_within_15_percent_at_256_vnodes(self, shards):
        ring = ConsistentHashRing(_names(shards), vnodes=DEFAULT_VNODES)
        low, high = ring.load_spread()
        assert low >= -0.15, f"most-underloaded shard at {low:+.1%}"
        assert high <= 0.15, f"most-overloaded shard at {high:+.1%}"

    def test_capacity_cap_gives_pigeonhole_balance(self):
        # With cap_factor=1.0 total capacity equals demand, so every
        # shard holds either floor or ceil of the mean partition count.
        ring = ConsistentHashRing(_names(16), vnodes=DEFAULT_VNODES)
        counts = ring.partition_counts()
        mean = ring.partitions / len(ring.nodes)
        assert counts.min() >= int(np.floor(mean))
        assert counts.max() <= int(np.ceil(mean))

    def test_every_partition_owned(self):
        ring = ConsistentHashRing(_names(8), vnodes=32)
        assert int(ring.partition_counts().sum()) == ring.partitions


class TestRemap:
    @pytest.mark.parametrize("shards", [16, 32])
    def test_quarantine_one_node_remaps_under_2_over_n(self, shards):
        ring = ConsistentHashRing(_names(shards), vnodes=DEFAULT_VNODES)
        shrunk = ring.without(ring.nodes[shards // 2])
        fraction = ring.remap_fraction(shrunk)
        bound = 2.0 / shards
        # removing a node must move at least its own ~1/N share...
        assert fraction >= 0.5 / shards
        # ...but never more than the issue's 2/N minimal-remap bound.
        assert fraction < bound, f"remap {fraction:.4f} >= 2/N {bound:.4f}"

    @pytest.mark.parametrize("shards", [16, 32])
    def test_add_one_node_remaps_under_2_over_n(self, shards):
        ring = ConsistentHashRing(_names(shards), vnodes=DEFAULT_VNODES)
        grown = ring.with_nodes(f"s{9000 + shards:04d}")
        fraction = ring.remap_fraction(grown)
        assert 0.0 < fraction < 2.0 / shards

    def test_surviving_nodes_keep_untouched_partitions(self):
        # Quarantining s0005 must never move a key between two survivors'
        # *first-choice* partitions: survivors only ever gain partitions.
        ring = ConsistentHashRing(_names(8), vnodes=64)
        shrunk = ring.without("s0005")
        removed_idx = ring.nodes.index("s0005")
        mine = np.asarray(ring.nodes, dtype=object)[ring.owner_of_partition]
        theirs = np.asarray(shrunk.nodes, dtype=object)[shrunk.owner_of_partition]
        moved = mine != theirs
        # every partition the removed node owned must move somewhere
        assert np.all(moved[ring.owner_of_partition == removed_idx])

    def test_remap_requires_shared_partition_grid(self):
        a = ConsistentHashRing(_names(4), vnodes=16)
        b = ConsistentHashRing(_names(4), vnodes=64)
        with pytest.raises(ValueError):
            a.remap_fraction(b)


class TestDeterminism:
    def test_assignment_is_a_pure_function_of_inputs(self):
        a = ConsistentHashRing(_names(12), vnodes=64, salt=7)
        b = ConsistentHashRing(list(reversed(_names(12))), vnodes=64, salt=7)
        assert a.nodes == b.nodes
        assert np.array_equal(a.owner_of_partition, b.owner_of_partition)

    def test_salt_changes_assignment(self):
        a = ConsistentHashRing(_names(12), vnodes=64, salt=1)
        b = ConsistentHashRing(_names(12), vnodes=64, salt=2)
        assert not np.array_equal(a.owner_of_partition, b.owner_of_partition)

    def test_lookup_matches_bulk_assign(self):
        ring = ConsistentHashRing(_names(6), vnodes=32)
        hashes = mix64(np.arange(512, dtype=np.uint64))
        owners = ring.assign(hashes)
        for i in range(0, 512, 37):
            assert ring.lookup(int(hashes[i])) == ring.nodes[int(owners[i])]

    def test_name_token_is_not_builtin_hash(self):
        # sha256-derived: stable across processes, sensitive to the salt.
        assert name_token("s0001", 0) == name_token("s0001", 0)
        assert name_token("s0001", 0) != name_token("s0001", 1)
        assert name_token("s0001", 0) != hash("s0001")

    def test_mix64_scalar_matches_vector(self):
        xs = np.array([0, 1, 2**63, 2**64 - 1], dtype=np.uint64)
        vec = mix64(xs)
        for i, x in enumerate([0, 1, 2**63, 2**64 - 1]):
            assert mix64(x) == int(vec[i])


class TestValidation:
    def test_empty_ring_rejected(self):
        with pytest.raises(ValueError):
            ConsistentHashRing([])

    def test_non_power_of_two_partitions_rejected(self):
        with pytest.raises(ValueError):
            ConsistentHashRing(_names(4), partitions=100)

    def test_cap_factor_below_one_rejected(self):
        with pytest.raises(ValueError):
            ConsistentHashRing(_names(4), cap_factor=0.5)
