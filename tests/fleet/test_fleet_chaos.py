"""Fleet infrastructure chaos: fault plans, the failover compiler, and
end-to-end chaos runs (conservation, determinism, recovery semantics)."""

import pickle

import pytest

from repro.errors import FaultInjectionError
from repro.faultinject.fleet_faults import (
    FleetFaultPlan,
    HostCrash,
    LinkDegradation,
    LinkPartition,
    StragglerWindow,
)
from repro.fleet.chaos import (
    compile_fleet_chaos,
    failover_drain_schedule,
    remap_fractions,
)
from repro.fleet.runner import plan_fleet, run_fleet
from repro.fleet.topology import FleetConfig, FleetConfigError, FleetTopology


def _chaos_config(**overrides):
    """A loaded small fleet where queues actually carry backlog, so a
    crash re-homes real work."""
    defaults = dict(
        hosts=4, shards=8, scale=0.05, epochs=48, ground_shards=0,
        load_factor=6.0, min_coverage=0.6, queue_capacity=256,
        quarantined=((0, 5), (1, 13)),
    )
    defaults.update(overrides)
    return FleetConfig(**defaults)


class TestFaultPlanSpecs:
    def test_crash_parse(self):
        assert HostCrash.parse("3@12+8") == HostCrash(3, 12, 8)
        assert HostCrash.parse("3@12") == HostCrash(3, 12, None)

    def test_partition_parse(self):
        assert LinkPartition.parse("0-1@10+16") == LinkPartition(0, 1, 10, 16)

    def test_degradation_parse_with_factor(self):
        d = LinkDegradation.parse("2-3@4+6:8.0")
        assert (d.host_a, d.host_b, d.factor) == (2, 3, 8.0)

    def test_straggler_parse(self):
        s = StragglerWindow.parse("1,2@8+4:0.25")
        assert s.hosts == (1, 2) and s.factor == 0.25

    @pytest.mark.parametrize("bad", ["x@1", "1@", "1-2@", "@5"])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(FaultInjectionError):
            HostCrash.parse(bad)

    def test_plan_roundtrips_through_dict(self):
        plan = FleetFaultPlan.parse(
            crashes=("1@6+8", "2@20"),
            partitions=("0-1@8+10",),
            degradations=("2-3@4+6:8.0",),
            stragglers=("1,2@8+4:0.25",),
        )
        assert FleetFaultPlan.from_dict(plan.to_dict()) == plan

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(FaultInjectionError):
            FleetFaultPlan.from_dict({"crashs": []})

    def test_schedule_queries(self):
        plan = FleetFaultPlan.parse(
            crashes=("1@6+8",), partitions=("0-1@8+10",)
        )
        assert plan.down_hosts_at(6) == {1}
        assert plan.down_hosts_at(13) == {1}
        assert plan.down_hosts_at(14) == set()
        assert plan.link_partitioned(0, 1, 8)
        assert plan.link_partitioned(1, 0, 17)
        assert not plan.link_partitioned(0, 1, 18)


class TestGeneratedPlans:
    def test_same_seed_same_plan(self):
        a = FleetFaultPlan.generate(8, 48, crashes=2, partitions=1, seed=7)
        b = FleetFaultPlan.generate(8, 48, crashes=2, partitions=1, seed=7)
        assert a == b and a.digest() == b.digest()

    def test_different_seed_different_plan(self):
        a = FleetFaultPlan.generate(8, 48, crashes=2, partitions=1, seed=7)
        b = FleetFaultPlan.generate(8, 48, crashes=2, partitions=1, seed=8)
        assert a.digest() != b.digest()

    def test_victims_are_distinct_and_never_the_whole_fleet(self):
        plan = FleetFaultPlan.generate(4, 48, crashes=10, seed=3)
        victims = [c.host for c in plan.crashes]
        assert len(victims) == len(set(victims)) <= 3

    def test_partitions_cut_spill_links(self):
        plan = FleetFaultPlan.generate(8, 48, partitions=3, seed=5)
        for p in plan.partitions:
            assert p.host_b == (p.host_a + 1) % 8

    def test_merge_concatenates(self):
        a = FleetFaultPlan.parse(crashes=("1@6",))
        b = FleetFaultPlan.generate(8, 48, partitions=1, seed=2)
        merged = a.merge(b)
        assert merged.crashes == a.crashes
        assert merged.partitions == b.partitions


class TestDrainSchedule:
    def test_capped_exponential_backoff(self):
        assert failover_drain_schedule(10, 96, 4, 1) == (11, 13, 17, 25)

    def test_cap_at_eight_times_base(self):
        schedule = failover_drain_schedule(0, 500, 8, 1)
        gaps = [b - a for a, b in zip(schedule, schedule[1:])]
        assert max(gaps) == 8

    def test_clipped_to_horizon(self):
        assert failover_drain_schedule(44, 48, 4, 1) == (45, 47)

    def test_zero_budget_empty(self):
        assert failover_drain_schedule(10, 96, 0, 1) == ()


class TestCompiler:
    def test_manifests_are_picklable_pure_data(self):
        config = _chaos_config(
            faults=FleetFaultPlan.parse(crashes=("1@12+10",))
        )
        topology = FleetTopology(config)
        manifests = compile_fleet_chaos(config, topology, plan_fleet(topology))
        assert manifests
        pickle.loads(pickle.dumps(manifests))

    def test_inherited_ops_conserve_diverted_arrivals(self):
        from repro.fleet.shardsim import _arrivals

        config = _chaos_config(
            faults=FleetFaultPlan.parse(crashes=("1@12+10", "2@24"))
        )
        topology = FleetTopology(config)
        plans = plan_fleet(topology)
        manifests = {p.shard_id: p.chaos for p in plans if p.chaos}
        arrivals = {p.shard_id: _arrivals(p, config) for p in plans}
        diverted = sum(
            arrivals[sid][e]
            for sid, m in manifests.items()
            for e in m.diverted_epochs
        )
        inherited = sum(
            sum(m.inherited_ops) for m in manifests.values()
        )
        assert diverted > 0
        assert inherited == diverted

    def test_recipients_exclude_dead_shards(self):
        config = _chaos_config(
            faults=FleetFaultPlan.parse(crashes=("1@12+10",))
        )
        topology = FleetTopology(config)
        manifests = compile_fleet_chaos(config, topology, plan_fleet(topology))
        dead = {s.name for s in topology.shards if s.host_id == 1}
        for shard_id, manifest in manifests.items():
            for window in manifest.crashes:
                names = {name for name, _ in window.recipients}
                assert not names & dead

    def test_partition_reroutes_spill_around_dead_link(self):
        config = _chaos_config(
            faults=FleetFaultPlan.parse(partitions=("0-1@10+16",))
        )
        topology = FleetTopology(config)
        manifests = compile_fleet_chaos(config, topology, plan_fleet(topology))
        # host 0's shards spill to peer 1 by default; during the window
        # the route must avoid host 1 but still find a live host
        routed = [
            m for sid, m in manifests.items()
            if topology.shards[sid].host_id == 0 and m.spill_route
        ]
        assert routed
        for manifest in routed:
            for epoch in range(10, 26):
                assert manifest.spill_route[epoch] not in (1, -1)
            assert manifest.spill_route[9] == 1
            assert manifest.spill_route[26] == 1


class TestChaosRuns:
    @pytest.fixture(scope="class")
    def reports(self):
        config = _chaos_config(faults=FleetFaultPlan.parse(
            crashes=("1@12+10", "2@24"), partitions=("0-1@10+20",),
        ))
        return run_fleet(config, workers=1), run_fleet(config, workers=4)

    def test_digest_identical_across_worker_counts(self, reports):
        w1, w4 = reports
        assert w1.digest == w4.digest

    def test_conservation_balances_with_failover_buckets(self, reports):
        w1, _ = reports
        conservation = w1.rollup["conservation"]
        assert conservation["balanced"]
        assert conservation["re_homed_split_ok"]
        assert not conservation["missing_shards"]

    def test_backlog_is_re_homed_and_recovered(self, reports):
        w1, _ = reports
        failover = w1.rollup["failover"]
        assert failover["hosts_crashed"] == 2
        assert failover["failovers"] >= 2
        assert failover["re_homed"] > 0
        assert (
            failover["re_homed"]
            == failover["recovered"] + failover["dropped"]
        )

    def test_failover_lag_and_exposure_metered(self, reports):
        w1, _ = reports
        failover = w1.rollup["failover"]
        assert failover["lag"]["count"] == failover["recovered"]
        assert failover["lag"]["p95"] > 0
        assert failover["exposure"]["logs"] == failover["recovered"]
        by_reason = w1.rollup["exposure"]["by_reason"]
        assert by_reason["failover"]["logs"] > 0

    def test_chaos_events_flow_through_the_stream(self, reports):
        w1, _ = reports
        kinds = {e["kind"] for e in w1.events}
        assert {
            "fleet.host_down", "fleet.failover", "fleet.redispatch",
            "fleet.host_up", "fleet.readmit", "fleet.inherit",
        } <= kinds

    def test_readmitted_host_resumes_arrivals(self, reports):
        w1, _ = reports
        crashed = [s for s in w1.shards if s["host"] == "h001"]
        assert crashed
        for shard in crashed:
            # host 1 restarts at epoch 22, re-admits at 26: its shards
            # divert part of the run but carry demand before and after
            assert shard["diverted"] > 0
            assert shard["ops"] > 0

    def test_artifact_reports_failover_block(self, reports):
        w1, _ = reports
        payload = w1.to_json()
        assert payload["failover"]["hosts_crashed"] == 2
        assert "p95" in payload["failover"]["lag"]
        assert payload["conservation"]["balanced"]

    def test_render_mentions_failover_and_conservation(self, reports):
        w1, _ = reports
        text = w1.render()
        assert "failover        :" in text
        assert "conservation    : balanced" in text

    def test_healthy_run_reports_zero_failover(self):
        report = run_fleet(_chaos_config(), workers=1)
        failover = report.rollup["failover"]
        assert failover["re_homed"] == failover["recovered"] == 0
        assert report.rollup["conservation"]["balanced"]


class TestPermanentCrashAndBudget:
    def test_exhausted_budget_drops_with_reason(self):
        # one validator per shard shrinks the recovery pool below the
        # re-homed backlog, so a one-attempt budget cannot drain it
        config = _chaos_config(
            faults=FleetFaultPlan.parse(crashes=("1@12+10", "2@24")),
            validators_per_shard=1,
            failover_retry_budget=1,
        )
        report = run_fleet(config, workers=1)
        failover = report.rollup["failover"]
        assert failover["re_homed"] > 0
        assert failover["dropped"] > 0
        assert (
            failover["re_homed"]
            == failover["recovered"] + failover["dropped"]
        )
        assert report.rollup["conservation"]["balanced"]
        kinds = {e["kind"] for e in report.events}
        assert "fleet.failover.drop" in kinds
        # host 2 dies at epoch 24 with no restart: it must never come back
        assert not any(
            e["kind"] in ("fleet.host_up", "fleet.readmit")
            and e["host"] == "h002"
            for e in report.events
        )

    def test_straggler_window_emits_and_stays_deterministic(self):
        config = _chaos_config(
            faults=FleetFaultPlan.parse(stragglers=("2@12+8:0.5",))
        )
        a = run_fleet(config, workers=1)
        b = run_fleet(config, workers=2)
        assert a.digest == b.digest
        assert any(e["kind"] == "fleet.straggle" for e in a.events)


class TestChaosAuditRules:
    def test_zero_retry_budget_with_crashes_rejected(self):
        with pytest.raises(FleetConfigError) as excinfo:
            FleetTopology(_chaos_config(
                faults=FleetFaultPlan.parse(crashes=("1@6",)),
                failover_retry_budget=0,
            ))
        assert any(
            v["code"] == "failover-retry-budget-zero"
            for v in excinfo.value.violations
        )

    def test_partition_naming_unknown_hosts_rejected(self):
        with pytest.raises(FleetConfigError) as excinfo:
            FleetTopology(_chaos_config(
                faults=FleetFaultPlan.parse(partitions=("0-9@5+4",))
            ))
        assert any(
            v["code"] == "chaos-unknown-host"
            for v in excinfo.value.violations
        )

    def test_crash_beyond_horizon_rejected(self):
        with pytest.raises(FleetConfigError) as excinfo:
            FleetTopology(_chaos_config(
                faults=FleetFaultPlan.parse(crashes=("1@500",))
            ))
        assert any(
            v["code"] == "crash-window-exceeds-horizon"
            for v in excinfo.value.violations
        )

    def test_total_outage_rejected(self):
        crashes = tuple(f"{h}@6" for h in range(4))
        with pytest.raises(FleetConfigError) as excinfo:
            FleetTopology(_chaos_config(
                faults=FleetFaultPlan.parse(crashes=crashes)
            ))
        assert any(
            v["code"] == "chaos-total-outage"
            for v in excinfo.value.violations
        )

    def test_valid_plan_accepted(self):
        FleetTopology(_chaos_config(
            faults=FleetFaultPlan.parse(
                crashes=("1@12+10",), partitions=("0-1@10+16",)
            )
        ))


class TestFleet128Acceptance:
    """The issue's acceptance gate: a seeded plan with >=2 crashes and
    >=1 partition on a 128-host fleet completes with zero lost logs and
    byte-identical digests at workers=1 and workers=4."""

    def test_seeded_chaos_on_128_hosts(self):
        plan = FleetFaultPlan.generate(
            hosts=128, epochs=32, crashes=3, partitions=2, seed=11
        )
        assert len(plan.crashes) >= 2
        assert len(plan.partitions) >= 1
        config = FleetConfig(
            hosts=128, shards=256, scale=0.02, epochs=32, ground_shards=0,
            load_factor=4.0, min_coverage=0.5, faults=plan,
        )
        w1 = run_fleet(config, workers=1)
        w4 = run_fleet(config, workers=4)
        assert w1.digest == w4.digest
        conservation = w1.rollup["conservation"]
        assert conservation["balanced"]
        assert conservation["re_homed_split_ok"]
        failover = w1.rollup["failover"]
        assert failover["hosts_crashed"] >= 2
        assert failover["failovers"] >= 2
        payload = w1.to_json()
        assert "p95" in payload["failover"]["lag"]
        assert "logs" in payload["failover"]["exposure"]
