"""Fleet self-profiling: digest parity and the merged profile payload.

The fleet's determinism contract (DESIGN.md §12) is that the worker
fan-out is an implementation detail — and the profiler must be one too.
These tests pin (1) the four-way digest parity {w1, w4} × {profile off,
profile on}, (2) that the merged payload obeys the same associative-merge
discipline as the shard results (merging worker payloads == one stream),
and (3) the per-worker utilization / straggler section.
"""

from repro.fleet import FleetConfig, run_fleet
from repro.obs import NULL_PROFILER, PROFILE_FORMAT, active
from repro.obs.profiling import merge_profiles


def _small_config(**overrides) -> FleetConfig:
    defaults = dict(
        hosts=2,
        shards=4,
        cores_per_host=32,
        keys=4000,
        users=600,
        epochs=24,
        vnodes=32,
        ground_shards=0,
        seed=11,
    )
    defaults.update(overrides)
    return FleetConfig(**defaults)


class TestFleetDigestParity:
    def test_profiler_and_workers_never_move_the_digest(self):
        config = _small_config()
        digests = {
            run_fleet(config, workers=workers, profile=profile).digest
            for workers in (1, 4)
            for profile in (None, True)
        }
        assert len(digests) == 1

    def test_events_identical_with_profile_on(self):
        config = _small_config()
        bare = run_fleet(config, workers=1)
        profiled = run_fleet(config, workers=4, profile=True)
        assert bare.events == profiled.events
        assert bare.rollup["ops"] == profiled.rollup["ops"]

    def test_ambient_profiler_restored(self):
        run_fleet(_small_config(), workers=1, profile=True)
        assert active() is NULL_PROFILER


class TestFleetProfilePayload:
    def test_unprofiled_report_has_no_payload(self):
        report = run_fleet(_small_config(), workers=1)
        assert report.profile is None
        assert "profile" not in report.to_json()

    def test_profiled_report_payload_shape(self):
        # one grounded shard so the DES event meter has something to count
        report = run_fleet(
            _small_config(ground_shards=1), workers=2, profile=True
        )
        payload = report.profile
        assert payload["format"] == PROFILE_FORMAT
        names = {s["name"] for s in payload["subsystems"]}
        assert {"fleet.plan", "fleet.worker", "fleet.shard",
                "fleet.merge"} <= names
        assert payload["events"] > 0
        assert report.to_json()["profile"] == payload

    def test_worker_sections_and_straggler(self):
        report = run_fleet(_small_config(), workers=2, profile=True)
        workers = report.profile["workers"]
        assert [w["worker"] for w in workers] == [0, 1]
        for worker in workers:
            assert worker["wall_s"] > 0
            assert 0.0 <= worker["utilization"] <= 1.0 + 1e-9
        straggler = report.profile["straggler"]
        assert straggler["worker"] in (0, 1)
        walls = [w["wall_s"] for w in workers]
        assert straggler["wall_s"] == max(walls)

    def test_single_worker_profile_counts_all_shards(self):
        config = _small_config()
        report = run_fleet(config, workers=1, profile=True)
        shard_calls = sum(
            s["calls"]
            for s in report.profile["subsystems"]
            if s["name"] == "fleet.shard"
        )
        assert shard_calls == config.shards

    def test_render_includes_profile_lines(self):
        report = run_fleet(_small_config(), workers=2, profile=True)
        text = report.render()
        assert "self-profile" in text
        assert "worker 0:" in text
        assert "straggler: worker" in text


class TestMergeEqualsSingleStream:
    def test_worker_merge_matches_single_stream_accounting(self):
        """Merging the per-worker payloads is the same fold the shard
        results go through: the merged node tree must equal the sum of
        its parts regardless of grouping (PR 7's merge == single-stream
        discipline, applied to the profile plane)."""
        config = _small_config()
        report = run_fleet(config, workers=4, profile=True)
        payload = report.profile
        # Re-merge the whole payload with itself split out: summing the
        # same nodes twice must exactly double calls and totals —
        # associativity with no hidden per-merge state.
        doubled = merge_profiles([payload, payload])
        by_path = {n["path"]: n for n in payload["nodes"]}
        for node in doubled["nodes"]:
            assert node["calls"] == 2 * by_path[node["path"]]["calls"]
            assert node["total_ns"] == 2 * by_path[node["path"]]["total_ns"]
        assert doubled["events"] == 2 * payload["events"]

    def test_shard_work_independent_of_worker_count(self):
        """The per-shard simulation cost is pure: the number of
        fleet.shard activations (and the engine-event meter) must not
        depend on how many workers split the plans."""
        config = _small_config(ground_shards=1)
        one = run_fleet(config, workers=1, profile=True).profile
        four = run_fleet(config, workers=4, profile=True).profile

        def calls(payload, name):
            return sum(
                s["calls"] for s in payload["subsystems"] if s["name"] == name
            )

        assert calls(one, "fleet.shard") == calls(four, "fleet.shard")
        assert one["events"] == four["events"]
