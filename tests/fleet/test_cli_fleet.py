"""The ``fleet`` CLI subcommand: parsing, artifacts, and exit codes."""

import json

import pytest

from repro.cli import build_parser, main

SMALL = [
    "fleet",
    "--hosts", "2",
    "--shards", "2",
    "--keys", "4000",
    "--users", "600",
    "--epochs", "24",
    "--ground-shards", "0",
    "--seed", "11",
]


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["fleet"])
        assert args.hosts == 8
        assert args.shards == 16
        assert args.workers == 1
        assert args.scale == 1.0
        assert args.ground_shards == 4

    def test_quarantine_specs(self):
        args = build_parser().parse_args(
            ["fleet", "--quarantine", "0:4", "--quarantine", "1:7"]
        )
        assert args.quarantine == ["0:4", "1:7"]


class TestCommand:
    def test_smoke_run_renders_summary(self, capsys):
        assert main(SMALL) == 0
        out = capsys.readouterr().out
        assert "fleet summary" in out
        assert "coverage" in out
        assert "determinism" in out

    def test_json_artifact(self, tmp_path, capsys):
        path = tmp_path / "fleet.json"
        assert main(SMALL + ["--json", str(path)]) == 0
        capsys.readouterr()
        artifact = json.loads(path.read_text())
        assert artifact["format"] == "orthrus-fleet/1"
        assert len(artifact["digest"]) == 64
        assert artifact["topology"]["hosts"] == 2

    def test_worker_count_does_not_change_the_artifact_digest(
        self, tmp_path, capsys
    ):
        solo, fanned = tmp_path / "w1.json", tmp_path / "w2.json"
        assert main(SMALL + ["--workers", "1", "--json", str(solo)]) == 0
        assert main(SMALL + ["--workers", "2", "--json", str(fanned)]) == 0
        capsys.readouterr()
        a = json.loads(solo.read_text())
        b = json.loads(fanned.read_text())
        assert a["digest"] == b["digest"]
        assert a["workers"] == 1 and b["workers"] == 2

    def test_events_and_metrics_and_timeline_artifacts(self, tmp_path, capsys):
        events = tmp_path / "events.jsonl"
        metrics = tmp_path / "metrics.json"
        timeline = tmp_path / "timeline.json"
        assert main(
            SMALL
            + ["--events-out", str(events), "--metrics-out", str(metrics),
               "--timeline-out", str(timeline)]
        ) == 0
        capsys.readouterr()
        lines = [json.loads(line) for line in events.read_text().splitlines()]
        assert lines and lines[-1]["kind"] == "shard.summary"
        snapshot = json.loads(metrics.read_text())
        assert snapshot["format"] == "orthrus-metrics/1"
        assert any(
            family["name"] == "fleet_ops_total" for family in snapshot["metrics"]
        )
        payload = json.loads(timeline.read_text())
        assert payload["format"] == "orthrus-timeseries/1"
        assert any(
            series["name"] == "validation_lag_p95" for series in payload["series"]
        )

    def test_fleet_safe_hold_exits_2(self, capsys):
        code = main(SMALL + ["--load-factor", "50"])
        assert code == 2
        captured = capsys.readouterr()
        assert "SAFE_HOLD" in captured.err

    def test_rejected_config_exits_1(self, capsys):
        code = main(SMALL + ["--watchdog-deadline", "1.0"])
        assert code == 1
        captured = capsys.readouterr()
        assert "watchdog-exceeds-slo" in captured.err

    def test_bad_quarantine_spec_rejected(self):
        with pytest.raises(SystemExit, match="HOST:CORE"):
            main(SMALL + ["--quarantine", "nonsense"])
