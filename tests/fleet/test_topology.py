"""Fleet topology construction and the structured config sanity checks."""

import pytest

from repro.fleet import FleetConfig, FleetConfigError, FleetTopology


def _codes(err: FleetConfigError) -> set[str]:
    return {v["code"] for v in err.violations}


class TestLayout:
    def test_shards_round_robin_across_hosts(self):
        topo = FleetTopology(FleetConfig(hosts=4, shards=10))
        for shard in topo.shards:
            assert shard.host_id == shard.shard_id % 4
        assert [s.shard_id for s in topo.shards] == list(range(10))

    def test_core_sets_disjoint_within_host(self):
        topo = FleetTopology(FleetConfig(hosts=2, shards=6, cores_per_host=32))
        for host in topo.hosts:
            used: set[int] = set()
            for shard in topo.shards:
                if shard.host_id != host.host_id:
                    continue
                cores = set(shard.app_cores) | set(shard.validator_cores)
                assert not (cores & used)
                used |= cores
            assert max(used) < host.cores

    def test_app_names_alternate(self):
        topo = FleetTopology(FleetConfig(hosts=2, shards=4))
        assert [s.app_name for s in topo.shards] == [
            "memcached", "lsmtree", "memcached", "lsmtree",
        ]

    def test_ring_is_cached_and_covers_all_shards(self):
        topo = FleetTopology(FleetConfig(hosts=2, shards=4, vnodes=32))
        ring = topo.ring()
        assert topo.ring() is ring
        assert list(ring.nodes) == [s.name for s in topo.shards]

    def test_peer_host_wraps_and_single_host_has_no_peer(self):
        topo = FleetTopology(FleetConfig(hosts=3, shards=3))
        assert [topo.peer_host(h) for h in range(3)] == [1, 2, 0]
        solo = FleetTopology(FleetConfig(hosts=1, shards=2))
        assert solo.peer_host(0) == 0

    def test_describe_is_json_shaped(self):
        topo = FleetTopology(FleetConfig(hosts=2, shards=4, vnodes=32))
        desc = topo.describe()
        assert desc["hosts"] == 2
        assert desc["shards"] == 4
        assert desc["cores"] == 2 * 32
        assert desc["ring_partitions"] >= 4 * 32
        assert len(desc["ring_spread"]) == 2


class TestSanityChecks:
    def test_validator_pool_fully_quarantined_rejected(self):
        # shard 0 on host 0 gets app cores 0-3 and validators 4-7;
        # quarantining exactly those four kills its whole pool while the
        # host still has plenty of usable cores.
        config = FleetConfig(
            hosts=2, shards=2, cores_per_host=32,
            quarantined=((0, 4), (0, 5), (0, 6), (0, 7)),
        )
        with pytest.raises(FleetConfigError) as excinfo:
            FleetTopology(config)
        assert _codes(excinfo.value) == {"validator-pool-quarantined"}
        assert excinfo.value.violations[0]["subject"] == "s0000"

    def test_partially_quarantined_pool_is_fine(self):
        config = FleetConfig(
            hosts=2, shards=2, cores_per_host=32,
            quarantined=((0, 4), (0, 5), (0, 6)),
        )
        topo = FleetTopology(config)
        assert topo.hosts[0].quarantined == (4, 5, 6)

    def test_shard_demand_exceeding_usable_cores_rejected(self):
        config = FleetConfig(
            hosts=1, shards=4, cores_per_host=16,
            app_cores_per_shard=4, validators_per_shard=4,
        )
        with pytest.raises(FleetConfigError) as excinfo:
            FleetTopology(config)
        assert _codes(excinfo.value) == {"shards-exceed-cores"}
        assert "32" in str(excinfo.value)

    def test_quarantine_shrinks_usable_cores(self):
        # 2 shards * 8 cores fits 16 cores exactly — until one core is
        # quarantined out.
        config = FleetConfig(
            hosts=1, shards=2, cores_per_host=16, quarantined=((0, 15),),
        )
        with pytest.raises(FleetConfigError) as excinfo:
            FleetTopology(config)
        assert "shards-exceed-cores" in _codes(excinfo.value)

    def test_watchdog_deadline_beyond_slo_window_rejected(self):
        config = FleetConfig(watchdog_deadline=5e-3, slo_window=2e-3)
        with pytest.raises(FleetConfigError) as excinfo:
            FleetTopology(config)
        assert _codes(excinfo.value) == {"watchdog-exceeds-slo"}

    def test_quarantine_outside_topology_rejected(self):
        config = FleetConfig(hosts=2, shards=2, quarantined=((5, 0), (0, 99)))
        with pytest.raises(FleetConfigError) as excinfo:
            FleetTopology(config)
        assert _codes(excinfo.value) == {"quarantine-out-of-range"}
        assert len(excinfo.value.violations) == 2

    def test_scalar_violations_collected_not_serial(self):
        config = FleetConfig(hosts=0, shards=0, epochs=1, epoch_s=0.0)
        with pytest.raises(FleetConfigError) as excinfo:
            FleetTopology(config)
        assert {"no-hosts", "no-shards", "too-few-epochs", "bad-epoch"} <= _codes(
            excinfo.value
        )

    def test_error_is_a_configuration_error_with_structured_violations(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError) as excinfo:
            FleetTopology(FleetConfig(min_coverage=1.5))
        err = excinfo.value
        assert isinstance(err, FleetConfigError)
        for violation in err.violations:
            assert set(violation) == {"code", "subject", "message"}
        assert "fleet config rejected" in str(err)
