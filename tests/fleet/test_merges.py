"""Merge == single-stream equivalence for every mergeable telemetry type.

The fleet merge is only sound if each rollup primitive is associative
and agrees with the single-stream result: sim histograms and RunMetrics,
obs registry snapshots, time-series buckets, and the fleet timeline that
rides on all of them.
"""

import random

from repro.fleet.merge import FleetTimeline
from repro.obs.metrics import MetricsRegistry, merge_snapshots
from repro.obs.timeseries import TimeSeries, load_timeline
from repro.sim.metrics import Histogram, RunMetrics


def _rng(label: str) -> random.Random:
    return random.Random(f"fleet-merge-tests/{label}")


class TestSimHistogramMerge:
    def test_merge_equals_single_stream(self):
        rng = _rng("hist")
        left = [rng.random() for _ in range(200)]
        right = [rng.random() for _ in range(130)]
        merged = Histogram()
        merged.extend(left)
        other = Histogram()
        other.extend(right)
        merged.merge(other)
        single = Histogram()
        single.extend(left + right)
        assert merged.summary() == single.summary()

    def test_merge_empty_is_identity(self):
        hist = Histogram()
        hist.extend([1.0, 2.0])
        before = hist.summary()
        hist.merge(Histogram())
        assert hist.summary() == before


class TestRunMetricsMerge:
    def test_merge_pools_counts_and_latencies(self):
        rng = _rng("runmetrics")
        a = RunMetrics()
        b = RunMetrics()
        single = RunMetrics()
        for metrics, ops in ((a, 40), (b, 25)):
            metrics.operations = ops
            metrics.validated = ops - 5
            metrics.skipped = 5
            metrics.detections = 2
            metrics.duration = 0.5 if metrics is a else 0.8
            metrics.peak_versioned_bytes = 1000
            metrics.peak_live_bytes = 400
            for _ in range(ops):
                value = rng.random() * 1e-4
                metrics.validation_latency.add(value)
                single.validation_latency.add(value)
        single.operations = 65
        single.validated = 55
        single.skipped = 10
        single.detections = 4
        a.merge(b)
        assert a.operations == single.operations
        assert a.validated == single.validated
        assert a.skipped == single.skipped
        assert a.detections == single.detections
        # shards run concurrently: duration is the max, memory coexists
        assert a.duration == 0.8
        assert a.peak_versioned_bytes == 2000
        assert a.validation_latency.summary() == single.validation_latency.summary()


class TestRegistrySnapshotMerge:
    @staticmethod
    def _shard_registry(shard: int, values: list[float]) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("fleet_ops_total", labels={"host": f"h{shard}"}).inc(
            100 * (shard + 1)
        )
        registry.counter("fleet_ops_total", labels={"host": "h-shared"}).inc(7)
        registry.gauge("fleet_quarantined_cores").set(shard)
        hist = registry.histogram("fleet_validation_lag_seconds")
        for value in values:
            hist.record(value)
        return registry

    def test_merge_snapshots_equals_single_registry(self):
        rng = _rng("registry")
        streams = [[rng.random() * 1e-3 for _ in range(50)] for _ in range(3)]
        snapshots = [
            self._shard_registry(shard, streams[shard]).snapshot()
            for shard in range(3)
        ]
        merged = merge_snapshots(snapshots)
        # counters: labeled children fold independently, shared label sums
        assert merged.value("fleet_ops_total", {"host": "h0"}) == 100
        assert merged.value("fleet_ops_total", {"host": "h2"}) == 300
        assert merged.value("fleet_ops_total", {"host": "h-shared"}) == 21
        assert merged.value("fleet_ops_total") == 600 + 21
        # gauges sum (each shard reports its own census)
        assert merged.value("fleet_quarantined_cores") == 0 + 1 + 2
        # histograms: merged summary equals one histogram fed all streams
        single = MetricsRegistry()
        hist = single.histogram("fleet_validation_lag_seconds")
        for stream in streams:
            for value in stream:
                hist.record(value)
        merged_hist = merged.series("fleet_validation_lag_seconds")[0][1]
        assert merged_hist.summary() == hist.summary()

    def test_merge_is_order_associative_on_counters(self):
        snaps = [
            self._shard_registry(shard, [0.1 * shard]).snapshot()
            for shard in range(3)
        ]
        forward = merge_snapshots(snaps)
        backward = merge_snapshots(reversed(snaps))
        assert forward.value("fleet_ops_total") == backward.value("fleet_ops_total")


class TestTimeSeriesMerge:
    def test_exact_stats_equal_single_stream(self):
        rng = _rng("timeseries")
        a = TimeSeries("lag", capacity=64, reservoir=8)
        b = TimeSeries("lag", capacity=64, reservoir=8)
        single = TimeSeries("lag", capacity=4096, reservoir=8)
        samples = [(i * 1e-5, rng.random()) for i in range(300)]
        for i, (t, value) in enumerate(samples):
            (a if i % 2 else b).append(t, value)
            single.append(t, value)
        a.merge(b)
        merged, whole = a.summary(), single.summary()
        # count/min/max are preserved exactly through bucket merges
        for stat in ("count", "min", "max"):
            assert merged[stat] == whole[stat]
        assert a.total_samples == 300
        assert len(a.buckets) <= a.capacity

    def test_merge_empty_series_is_identity(self):
        a = TimeSeries("s", capacity=8)
        a.append(0.0, 1.0)
        before = a.to_dict()
        a.merge(TimeSeries("s", capacity=8))
        assert a.to_dict() == before

    def test_buckets_interleave_by_time(self):
        a = TimeSeries("s", capacity=32)
        b = TimeSeries("s", capacity=32)
        for i in range(4):
            a.append(2 * i, float(i))          # even times
            b.append(2 * i + 1, float(10 + i))  # odd times
        a.merge(b)
        starts = [bucket.t_start for bucket in a.buckets]
        assert starts == sorted(starts)
        assert starts == [0, 1, 2, 3, 4, 5, 6, 7]


class TestFleetTimeline:
    @staticmethod
    def _shard_series(shard: int) -> dict[str, dict]:
        series = TimeSeries("queue_depth", capacity=32, unit="logs")
        for i in range(8):
            series.append(i * 1e-4, float(shard * 10 + i))
        return {"queue_depth": series.to_dict()}

    def test_fold_merges_by_name_and_counts_samples(self):
        timeline = FleetTimeline(cadence=1e-4)
        timeline.fold(self._shard_series(0))
        timeline.fold(self._shard_series(1))
        assert timeline.names() == ["queue_depth"]
        assert timeline.samples_taken == 16
        assert timeline.summary()["queue_depth"]["count"] == 16

    def test_round_trips_through_timeline_artifact(self, tmp_path):
        from repro.obs.timeseries import write_timeline_json

        timeline = FleetTimeline(cadence=5e-5)
        timeline.fold(self._shard_series(0))
        timeline.fold(self._shard_series(3))
        path = tmp_path / "fleet-timeline.json"
        # FleetTimeline is duck-compatible with TimeSeriesRecorder here
        write_timeline_json(timeline, str(path))
        loaded = load_timeline(str(path))
        assert set(loaded) == {"queue_depth"}
        assert loaded["queue_depth"].total_samples == 16
        assert loaded["queue_depth"].summary() == timeline.summary()["queue_depth"]
