"""Fleet drift audit + exposure fold: worker-count invariance.

Shard workers record exposure windows into their own registries and
report terminal drift findings; the parent folds both through the same
associative merges the metrics use, so every rollup — and the fleet
digest — must be identical for one worker and four.
"""

import pytest

from repro.fleet.merge import merge_audit
from repro.fleet.runner import run_fleet
from repro.fleet.shardsim import ShardResult
from repro.fleet.topology import FleetConfig
from repro.obs.audit import AUDIT_FORMAT


def _healthy_config():
    return FleetConfig(hosts=2, shards=2, scale=0.05, epochs=24,
                       ground_shards=0, seed=11)


def _overloaded_config():
    # far more offered load than the validator pools can drain: coverage
    # collapses below the declared floor and queues drop
    return FleetConfig(hosts=2, shards=2, scale=0.05, epochs=24,
                       load_factor=30.0, queue_capacity=8,
                       min_coverage=0.5, ground_shards=0, seed=11)


class TestWorkerCountInvariance:
    @pytest.fixture(scope="class")
    def reports(self):
        config = _overloaded_config()
        return run_fleet(config, workers=1), run_fleet(config, workers=4)

    def test_digest_and_audit_identical(self, reports):
        w1, w4 = reports
        assert w1.digest == w4.digest
        assert w1.audit == w4.audit

    def test_exposure_rollup_identical(self, reports):
        w1, w4 = reports
        assert w1.rollup["exposure"] == w4.rollup["exposure"]
        assert w1.rollup["exposure"]["logs"] > 0


class TestDriftFindings:
    @pytest.fixture(scope="class")
    def overloaded(self):
        return run_fleet(_overloaded_config(), workers=1)

    def test_overload_raises_coverage_floor_findings(self, overloaded):
        payload = overloaded.audit
        assert payload["format"] == AUDIT_FORMAT
        assert payload["targets"] == ["fleet-drift"]
        assert payload["summary"]["errors"] > 0
        rules = {f["rule"] for f in payload["findings"]}
        assert "drift-coverage-floor" in rules
        # two drift rules per shard
        assert payload["rules_run"] == 2 * len(overloaded.shards)

    def test_findings_name_the_shard(self, overloaded):
        subjects = {f["subject"] for f in overloaded.audit["findings"]}
        shard_names = {s["shard"] for s in overloaded.shards}
        assert subjects <= shard_names

    def test_exposure_attributes_reasons(self, overloaded):
        by_reason = overloaded.rollup["exposure"]["by_reason"]
        assert by_reason  # overload must open windows
        assert set(by_reason) <= {
            "sampled-out", "queue-drop", "checksum-only", "stalled"
        }

    def test_render_and_artifact_carry_the_audit(self, overloaded):
        text = overloaded.render()
        assert "exposure        :" in text
        assert "drift audit     :" in text
        payload = overloaded.to_json()
        assert payload["audit"] == overloaded.audit
        assert payload["exposure"] == overloaded.rollup["exposure"]

    def test_healthy_fleet_is_clean(self):
        report = run_fleet(_healthy_config(), workers=1)
        assert report.audit["summary"]["ok"] is True
        assert report.audit["findings"] == []


class TestMergeAudit:
    def test_merge_is_order_invariant(self):
        def shard(shard_id, findings):
            result = ShardResult(shard_id=shard_id, host_id=0)
            result.audit = findings
            return result

        finding = {
            "rule": "drift-coverage-floor", "severity": "error",
            "subject": "s0001", "message": "coverage low",
            "remediation": "", "observed": {},
        }
        shards = [shard(0, []), shard(1, [finding])]
        forward = merge_audit(shards)
        backward = merge_audit(list(reversed(shards)))
        assert forward == backward
        assert forward["rules_run"] == 4
        assert forward["findings"][0]["subject"] == "s0001"
