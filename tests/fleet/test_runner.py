"""Fleet planner/runner: placement invariants, purity, worker-count
independence of the merged digest, and the SAFE_HOLD rollup."""

import pytest

from repro.fleet import (
    FleetConfig,
    FleetTopology,
    fleet_seed,
    plan_fleet,
    run_fleet,
    shard_rng,
    simulate_shard,
)


def _small_config(**overrides) -> FleetConfig:
    defaults = dict(
        hosts=2,
        shards=4,
        cores_per_host=32,
        keys=4000,
        users=600,
        epochs=24,
        vnodes=32,
        ground_shards=0,
        seed=11,
    )
    defaults.update(overrides)
    return FleetConfig(**defaults)


class TestPlanFleet:
    def test_workload_apportioned_exactly(self):
        config = _small_config()
        plans = plan_fleet(FleetTopology(config))
        assert len(plans) == config.shards
        assert sum(p.keys for p in plans) == config.effective_keys
        assert sum(p.users for p in plans) == config.effective_users
        assert sum(p.ops for p in plans) == config.total_ops

    def test_plans_are_deterministic(self):
        config = _small_config()
        a = plan_fleet(FleetTopology(config))
        b = plan_fleet(FleetTopology(config))
        assert a == b

    def test_ground_shards_spread_with_stride(self):
        config = _small_config(shards=8, ground_shards=2)
        plans = plan_fleet(FleetTopology(config))
        grounded = [p.shard_id for p in plans if p.ground]
        assert grounded == [0, 4]

    def test_pre_quarantined_cores_reach_their_shard_plan(self):
        # host 0, shard 0: app cores 0-3, validators 4-7
        config = _small_config(quarantined=((0, 4), (0, 5)))
        plans = plan_fleet(FleetTopology(config))
        assert plans[0].quarantined_at_start == (4, 5)
        assert all(p.quarantined_at_start == () for p in plans[1:])


class TestStreams:
    def test_shard_stream_independent_of_fleet_shape(self):
        # the same (seed, host, shard, label) stream no matter how many
        # other shards/hosts/workers the fleet has
        draws = [shard_rng(11, 1, 3, "load").random() for _ in range(4)]
        assert [shard_rng(11, 1, 3, "load").random() for _ in range(4)] == draws

    def test_labels_separate_streams(self):
        seeds = {
            fleet_seed(11, 0, 0),
            fleet_seed(11, 0, 1),
            fleet_seed(11, 1, 0),
            fleet_seed(11, 0, 0, "load"),
            fleet_seed(12, 0, 0),
        }
        assert len(seeds) == 5


class TestShardPurity:
    def test_simulate_shard_is_a_pure_function_of_plan_and_config(self):
        config = _small_config()
        plan = plan_fleet(FleetTopology(config))[1]
        a = simulate_shard(plan, config)
        b = simulate_shard(plan, config)
        assert a.events == b.events
        assert a.snapshot == b.snapshot
        assert a.series == b.series
        assert a.summary == b.summary

    def test_every_shard_emits_a_terminal_summary_event(self):
        config = _small_config()
        plans = plan_fleet(FleetTopology(config))
        for plan in plans:
            result = simulate_shard(plan, config)
            assert result.events[-1][4] == "shard.summary"


class TestRunFleet:
    def test_digest_independent_of_worker_count(self):
        config = _small_config()
        solo = run_fleet(config, workers=1)
        fanned = run_fleet(config, workers=2)
        assert solo.digest == fanned.digest
        assert solo.events == fanned.events
        assert solo.rollup == fanned.rollup
        assert solo.registry.snapshot() == fanned.registry.snapshot()
        assert solo.timeline.to_dict() == fanned.timeline.to_dict()

    def test_digest_sensitive_to_config(self):
        a = run_fleet(_small_config(), workers=1)
        b = run_fleet(_small_config(seed=12), workers=1)
        assert a.digest != b.digest

    def test_rollup_accounts_for_every_offered_log(self):
        report = run_fleet(_small_config(), workers=1)
        rollup = report.rollup
        assert rollup["ops"] == report.config.total_ops
        accounted = (
            rollup["validated"]
            + rollup["skipped"]
            + rollup["dropped"]
            + rollup["checksum_only"]
        )
        assert accounted == rollup["ops"]
        assert 0.0 < rollup["coverage"] <= 1.0

    def test_grounded_shards_contribute_digests_and_metrics(self):
        config = _small_config(ground_shards=1, ground_ops=60)
        report = run_fleet(config, workers=1)
        ground = report.rollup["ground"]
        assert ground is not None
        assert ground["shards"] == 1
        assert ground["operations"] > 0
        assert list(ground["digests"]) == ["s0000"]
        assert any(e["kind"] == "ground.digest" for e in report.events)

    def test_overload_walks_ladder_to_safe_hold(self):
        config = _small_config(load_factor=50.0, min_coverage=0.9)
        report = run_fleet(config, workers=1)
        assert report.safe_hold
        assert report.rollup["incidents"]["by_kind"].get("safe-hold", 0) >= 1
        assert report.rollup["degradation"]["peak"] == "safe-hold"

    def test_healthy_fleet_stays_normal(self):
        report = run_fleet(_small_config(), workers=1)
        assert not report.safe_hold
        assert report.rollup["degradation"]["peak"] == "normal"

    def test_artifact_shape(self):
        report = run_fleet(_small_config(), workers=1)
        artifact = report.to_json()
        assert artifact["format"] == "orthrus-fleet/1"
        assert artifact["digest"] == report.digest
        assert artifact["workload"]["ops"] == report.config.total_ops
        assert len(artifact["shards"]) == report.config.shards
        assert artifact["event_count"] == len(report.events)

    def test_merged_events_are_totally_ordered(self):
        report = run_fleet(_small_config(), workers=1)
        keys = [(e["t"], e["host"], e["shard"]) for e in report.events]
        assert keys == sorted(keys)
        assert [e["seq"] for e in report.events] == list(range(len(keys)))

    def test_workers_clamped_to_host_count(self):
        report = run_fleet(_small_config(), workers=16)
        assert report.workers == 2

    def test_bad_config_raises_before_any_simulation(self):
        from repro.fleet import FleetConfigError

        with pytest.raises(FleetConfigError):
            run_fleet(_small_config(watchdog_deadline=1.0), workers=1)
