"""Ring remap under sequential host loss: the failover engine re-homes
shards via ``ConsistentHashRing.without``, so node removal must stay
minimal (<2/N), deterministic, and never land work on a dead node."""

import pytest

from repro.fleet.ring import ConsistentHashRing


def _names(n: int) -> list[str]:
    return [f"s{i:04d}" for i in range(n)]


@pytest.mark.parametrize("n", [8, 16, 32])
class TestSequentialLoss:
    def test_single_loss_remap_below_two_over_n(self, n):
        ring = ConsistentHashRing(_names(n))
        for victim in (ring.nodes[0], ring.nodes[n // 2], ring.nodes[-1]):
            survivor = ring.without(victim)
            assert ring.remap_fraction(survivor) < 2.0 / n

    def test_double_loss_remap_below_two_steps_of_bound(self, n):
        ring = ConsistentHashRing(_names(n))
        first = ring.without(ring.nodes[0])
        second = first.without(first.nodes[0])
        # each removal step individually honors the bound
        assert ring.remap_fraction(first) < 2.0 / n
        assert first.remap_fraction(second) < 2.0 / (n - 1)

    def test_no_partition_owned_by_a_dead_node(self, n):
        ring = ConsistentHashRing(_names(n))
        dead = {ring.nodes[0], ring.nodes[1]}
        survivor = ring.without(*dead)
        assert not set(survivor.nodes) & dead
        owners = {
            survivor.nodes[owner]
            for owner in survivor.owner_of_partition.tolist()
        }
        assert not owners & dead
        counts = survivor.partition_counts()
        assert len(counts) == len(survivor.nodes)
        assert (counts > 0).all()

    def test_sequential_loss_equals_direct_removal(self, n):
        """N-1 then N-2 via chained .without lands every partition on the
        same owner as removing both nodes at once: placement after
        failover is a pure function of the surviving set."""
        ring = ConsistentHashRing(_names(n))
        a, b = ring.nodes[0], ring.nodes[n // 2]
        chained = ring.without(a).without(b)
        direct = ring.without(a, b)
        assert chained.nodes == direct.nodes
        assert (
            chained.owner_of_partition == direct.owner_of_partition
        ).all()

    def test_rebuild_is_deterministic(self, n):
        one = ConsistentHashRing(_names(n)).without("s0000")
        two = ConsistentHashRing(_names(n)).without("s0000")
        assert (one.owner_of_partition == two.owner_of_partition).all()


class TestRemapAccounting:
    def test_displaced_partitions_belonged_to_the_victim_or_cascade(self):
        """The moved set is dominated by the victim's own partitions; the
        cascade (capacity-bound evictions among survivors) stays small."""
        ring = ConsistentHashRing(_names(16))
        victim = ring.nodes[3]
        survivor = ring.without(victim)
        base = ring.owner_of_partition
        after = survivor.owner_of_partition
        victim_idx = ring.nodes.index(victim)
        moved = 0
        cascaded = 0
        for p in range(len(base)):
            before_name = ring.nodes[base[p]]
            after_name = survivor.nodes[after[p]]
            if before_name != after_name:
                moved += 1
                if base[p] != victim_idx:
                    cascaded += 1
        assert moved > 0
        assert cascaded <= moved - cascaded  # cascade never dominates

    def test_remap_fraction_requires_same_grid(self):
        a = ConsistentHashRing(_names(8))
        b = ConsistentHashRing(_names(8), partitions=2 * len(a.owner_of_partition))
        with pytest.raises(ValueError):
            a.remap_fraction(b)
