"""Supervised worker fan-out: failure classification, bounded in-parent
retry, partial-result salvage, and the degraded-fleet surface."""

import multiprocessing
import multiprocessing.pool
import pickle
import time

import pytest

from repro.errors import FleetExecutionError
from repro.fleet import runner
from repro.fleet.runner import _classify_failure, run_fleet
from repro.fleet.topology import FleetConfig

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="supervision tests patch the worker entry point via fork",
)


def _small_config(**overrides):
    defaults = dict(hosts=4, shards=8, scale=0.02, epochs=12, ground_shards=0)
    defaults.update(overrides)
    return FleetConfig(**defaults)


_REAL_SIMULATE_GROUP = runner._simulate_group


def _in_worker() -> bool:
    return multiprocessing.current_process().name != "MainProcess"


def _crashes_in_worker_only(payload):
    if _in_worker():
        raise RuntimeError("injected worker crash")
    return _REAL_SIMULATE_GROUP(payload)


def _sleeps_in_worker_only(payload):
    if _in_worker():
        time.sleep(5.0)
    return _REAL_SIMULATE_GROUP(payload)


def _host_zero_group_always_fails(payload):
    _config, plans, _want = payload
    if any(plan.host_id == 0 for plan in plans):
        raise RuntimeError("injected persistent failure")
    return _REAL_SIMULATE_GROUP(payload)


def _always_fails(payload):
    raise RuntimeError("injected total failure")


class TestClassification:
    def test_timeout(self):
        assert _classify_failure(multiprocessing.TimeoutError()) == "timeout"

    def test_pickle(self):
        assert _classify_failure(pickle.PicklingError("x")) == "pickle"
        assert _classify_failure(pickle.UnpicklingError("x")) == "pickle"
        err = multiprocessing.pool.MaybeEncodingError("boom", "task")
        assert _classify_failure(err) == "pickle"

    def test_everything_else_is_a_crash(self):
        assert _classify_failure(RuntimeError("x")) == "crash"
        assert _classify_failure(MemoryError()) == "crash"


class TestRetrySalvage:
    def test_worker_crash_is_retried_inline_with_full_results(
        self, monkeypatch
    ):
        config = _small_config()
        baseline = run_fleet(config, workers=1)
        monkeypatch.setattr(runner, "_simulate_group", _crashes_in_worker_only)
        report = run_fleet(config, workers=2)
        assert [r["status"] for r in report.fan_out] == ["retried", "retried"]
        assert all(r["failure"] == "crash" for r in report.fan_out)
        assert all(r["attempts"] == 2 for r in report.fan_out)
        assert not report.degraded
        # the inline retry re-runs the same pure shard functions, so the
        # salvaged fleet is byte-identical to the healthy one
        assert report.digest == baseline.digest
        assert not report.rollup["conservation"]["missing_shards"]

    def test_group_deadline_miss_classified_as_timeout(self, monkeypatch):
        config = _small_config()
        monkeypatch.setattr(runner, "_simulate_group", _sleeps_in_worker_only)
        report = run_fleet(config, workers=2, group_timeout_s=0.2)
        assert [r["status"] for r in report.fan_out] == ["retried", "retried"]
        assert all(r["failure"] == "timeout" for r in report.fan_out)
        assert not report.degraded

    def test_persistent_group_failure_salvages_partial_fleet(
        self, monkeypatch
    ):
        config = _small_config()
        monkeypatch.setattr(
            runner, "_simulate_group", _host_zero_group_always_fails
        )
        report = run_fleet(config, workers=2)
        statuses = {r["group"]: r["status"] for r in report.fan_out}
        assert statuses[0] == "lost"
        assert statuses[1] == "ok"
        assert report.degraded
        conservation = report.rollup["conservation"]
        assert conservation["missing_shards"]
        assert not conservation["balanced"]
        # surviving shards still merged and reported
        assert len(report.shards) == 4

    def test_degraded_artifact_carries_fan_out_records(self, monkeypatch):
        config = _small_config()
        monkeypatch.setattr(
            runner, "_simulate_group", _host_zero_group_always_fails
        )
        payload = run_fleet(config, workers=2).to_json()
        assert payload["degraded"] is True
        assert [r["status"] for r in payload["fan_out"]] == ["lost", "ok"]
        assert "injected persistent failure" in payload["fan_out"][0]["error"]

    def test_healthy_artifact_omits_fan_out(self):
        payload = run_fleet(_small_config(), workers=2).to_json()
        assert "fan_out" not in payload
        assert "degraded" not in payload

    def test_total_loss_raises_with_outcomes(self, monkeypatch):
        config = _small_config()
        monkeypatch.setattr(runner, "_simulate_group", _always_fails)
        with pytest.raises(FleetExecutionError) as excinfo:
            run_fleet(config, workers=2)
        outcomes = excinfo.value.outcomes
        assert len(outcomes) == 2
        assert all(r["status"] == "lost" for r in outcomes)
        assert all(r["attempts"] == 2 for r in outcomes)
