"""Exception hierarchy tests."""

import pytest

from repro.errors import (
    ChecksumMismatch,
    ConfigurationError,
    FaultInjectionError,
    HeapError,
    NoActiveContext,
    ReclaimedVersionError,
    ReproError,
    SdcDetected,
    SimulationError,
    ValidationMismatch,
)


def test_all_errors_derive_from_repro_error():
    for exc_type in (
        ConfigurationError,
        NoActiveContext,
        HeapError,
        ReclaimedVersionError,
        SdcDetected,
        ChecksumMismatch,
        ValidationMismatch,
        FaultInjectionError,
        SimulationError,
    ):
        assert issubclass(exc_type, ReproError)


def test_detection_exceptions_carry_metadata():
    exc = ValidationMismatch("diverged", closure="mc.set")
    assert exc.closure == "mc.set"
    assert exc.kind == "mismatch"
    checksum = ChecksumMismatch("bad CRC", closure="mc.get")
    assert checksum.kind == "checksum"
    assert isinstance(checksum, SdcDetected)


def test_reclaimed_version_is_heap_error():
    assert issubclass(ReclaimedVersionError, HeapError)


def test_catching_base_class_catches_detections():
    with pytest.raises(SdcDetected):
        raise ChecksumMismatch("x")
