"""Exception hierarchy tests."""

import pytest

from repro.errors import (
    ChecksumMismatch,
    ConfigurationError,
    FaultInjectionError,
    HeapError,
    NoActiveContext,
    ReclaimedVersionError,
    ReproError,
    SdcDetected,
    SimulationError,
    ValidationMismatch,
)


def test_all_errors_derive_from_repro_error():
    for exc_type in (
        ConfigurationError,
        NoActiveContext,
        HeapError,
        ReclaimedVersionError,
        SdcDetected,
        ChecksumMismatch,
        ValidationMismatch,
        FaultInjectionError,
        SimulationError,
    ):
        assert issubclass(exc_type, ReproError)


def test_detection_exceptions_carry_metadata():
    exc = ValidationMismatch("diverged", closure="mc.set")
    assert exc.closure == "mc.set"
    assert exc.kind == "mismatch"
    checksum = ChecksumMismatch("bad CRC", closure="mc.get")
    assert checksum.kind == "checksum"
    assert isinstance(checksum, SdcDetected)


def test_reclaimed_version_is_heap_error():
    assert issubclass(ReclaimedVersionError, HeapError)


def test_catching_base_class_catches_detections():
    with pytest.raises(SdcDetected):
        raise ChecksumMismatch("x")


def test_exit_code_registry_values():
    from repro.errors import ExitCode

    assert ExitCode.OK == 0
    assert ExitCode.FAILURE == 1
    assert ExitCode.SAFE_HOLD == 2
    assert ExitCode.CANARY_MISSED == 3
    assert ExitCode.DEGRADED_FLEET == 4
    assert len(ExitCode) == 5


def test_exit_codes_are_plain_ints():
    # sys.exit / subprocess return codes need real ints
    from repro.errors import ExitCode

    for code in ExitCode:
        assert isinstance(code, int)
        assert int(code) == code.value
