"""DetectionReport rollups: per-kind/per-closure/per-core counts, summary."""

import json

from repro.detection import DetectionEvent, DetectionReport


def event(kind="mismatch", closure="mc.set", seq=1, time=1.0, app_core=0, val_core=2):
    return DetectionEvent(
        kind=kind, closure=closure, seq=seq, time=time,
        app_core=app_core, val_core=val_core,
    )


def populated():
    report = DetectionReport()
    report.record(event(seq=1, time=1.0))
    report.record(event(seq=2, time=2.0, closure="mc.incr"))
    report.record(
        event(kind="checksum", closure="mc.control.tx", seq=3, time=3.0,
              app_core=1, val_core=-1)
    )
    return report


class TestRollups:
    def test_by_kind(self):
        assert populated().by_kind() == {"mismatch": 2, "checksum": 1}

    def test_by_closure(self):
        assert populated().by_closure() == {
            "mc.set": 1, "mc.incr": 1, "mc.control.tx": 1,
        }

    def test_by_app_core(self):
        assert populated().by_app_core() == {0: 2, 1: 1}

    def test_count_with_and_without_kind(self):
        report = populated()
        assert report.count() == 3
        assert report.count("mismatch") == 2
        assert report.count("rbv") == 0

    def test_event_cores_filters_unknowns(self):
        assert event().cores == (0, 2)
        assert event(app_core=-1, val_core=3).cores == (3,)
        assert event(app_core=-1, val_core=-1).cores == ()


class TestSummary:
    def test_summary_contents(self):
        summary = populated().summary()
        assert summary["detected"] is True
        assert summary["total"] == 3
        assert summary["by_kind"] == {"mismatch": 2, "checksum": 1}
        assert summary["by_app_core"] == {"0": 2, "1": 1}
        assert summary["first_time"] == 1.0

    def test_summary_is_json_serializable(self):
        text = json.dumps(populated().summary())
        assert json.loads(text)["total"] == 3

    def test_empty_report_summary(self):
        summary = DetectionReport().summary()
        assert summary == {
            "detected": False,
            "total": 0,
            "by_kind": {},
            "by_closure": {},
            "by_app_core": {},
            "first_time": None,
        }
