"""Determinism audit: seed derivation, digests, and the unseeded-random lint.

Every stochastic component must draw from a seeded ``random.Random``; the
lint half of this file scans the source tree and fails loudly on any call
through the process-global ``random`` module, which would make runs
unreplayable from their config digest.
"""

import random
import re
from pathlib import Path

import pytest

from repro.closures import syscalls
from repro.determinism import derive_seed, derived_rng, stable_digest

REPO_SRC = Path(__file__).resolve().parent.parent / "src"

#: module-level random functions whose use is inherently unseeded
_UNSEEDED_RANDOM = re.compile(
    r"(?<![\w.])random\.(random|randint|randrange|choice|choices|shuffle|"
    r"sample|uniform|gauss|normalvariate|expovariate|betavariate|"
    r"getrandbits|seed)\s*\("
)


class TestDeriveSeed:
    def test_stable(self):
        assert derive_seed(1, "chaos") == derive_seed(1, "chaos")

    def test_labels_separate_streams(self):
        seeds = {
            derive_seed(1),
            derive_seed(1, "chaos"),
            derive_seed(1, "workload"),
            derive_seed(1, "chaos", 0),
            derive_seed(2, "chaos"),
        }
        assert len(seeds) == 5

    def test_label_boundaries_are_unambiguous(self):
        # ("ab", "c") must not collide with ("a", "bc").
        assert derive_seed(1, "ab", "c") != derive_seed(1, "a", "bc")

    def test_fits_in_63_bits(self):
        seed = derive_seed(12345, "anything")
        assert 0 <= seed < 2**63

    def test_derived_rng_reproducible(self):
        a = derived_rng(7, "sampler")
        b = derived_rng(7, "sampler")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


class TestStableDigest:
    def test_dict_key_order_irrelevant(self):
        assert stable_digest({"a": 1, "b": 2}) == stable_digest({"b": 2, "a": 1})

    def test_value_changes_digest(self):
        assert stable_digest({"seed": 1}) != stable_digest({"seed": 2})

    def test_dataclasses_and_enums(self):
        from repro.faultinject.validator_faults import (
            ValidatorChaosConfig,
            ValidatorFaultKind,
        )

        config = ValidatorChaosConfig(specs=(("crash", 0.25),), seed=3)
        assert stable_digest(config) == stable_digest(config)
        assert stable_digest(ValidatorFaultKind.CRASH) == stable_digest("crash")

    def test_unhashable_payload_rejected(self):
        with pytest.raises(TypeError):
            stable_digest({"fn": lambda: None})


class TestSyscallFallbackSeeded:
    def test_default_stream_is_seeded_instance(self):
        # The fallback must be a private seeded Random, not the global
        # module (whose state any import can perturb).
        assert isinstance(syscalls._DEFAULT_RNG, random.Random)
        assert syscalls._DEFAULT_RNG is not random

    def test_explicit_rng_respected(self):
        from repro.closures.context import ExecutionContext
        from repro.closures.log import ClosureLog
        from repro.machine.cpu import Machine
        from repro.memory.heap import VersionedHeap

        heap = VersionedHeap()
        core = Machine(cores_per_node=2, numa_nodes=1).core(0)

        def draws():
            log = ClosureLog(seq=1, closure_name="c", caller="t")
            ctx = ExecutionContext(
                ExecutionContext.APP, core=core, heap=heap, log=log
            )
            rng = random.Random(99)
            with ctx:
                return [syscalls.sys_random(rng) for _ in range(4)]

        assert draws() == draws()


class TestUnseededRandomLint:
    def test_no_unseeded_random_in_source_tree(self):
        offenders = []
        for path in sorted(REPO_SRC.rglob("*.py")):
            for lineno, line in enumerate(
                path.read_text().splitlines(), start=1
            ):
                stripped = line.split("#", 1)[0]
                if _UNSEEDED_RANDOM.search(stripped):
                    offenders.append(f"{path.relative_to(REPO_SRC)}:{lineno}: {line.strip()}")
        assert not offenders, (
            "unseeded process-global random use breaks byte-replayability; "
            "derive an rng via repro.determinism.derived_rng instead:\n"
            + "\n".join(offenders)
        )

    def test_scan_covers_the_fleet_package(self):
        # the fleet fan-out is the easiest place to sneak in an unseeded
        # draw (worker processes hide it); make sure the lint walks it
        fleet = {p.name for p in (REPO_SRC / "repro" / "fleet").glob("*.py")}
        assert {
            "chaos.py", "ring.py", "runner.py", "shardsim.py", "streams.py"
        } <= fleet

    def test_scan_covers_the_fault_plan_modules(self):
        # chaos plans must come only from seeded generate(): an unseeded
        # draw here would give every run a different fault schedule and
        # break the w1==w4 digest contract under chaos
        fi = {
            p.name
            for p in (REPO_SRC / "repro" / "faultinject").glob("*.py")
        }
        assert {"fleet_faults.py", "validator_faults.py"} <= fi

    def test_scan_covers_the_auditor_modules(self):
        # the drift monitor and exposure ledger sit on the hot path of
        # every audited run; an unseeded draw there would desync the
        # audit payload from the run digest it claims to describe
        obs = {p.name for p in (REPO_SRC / "repro" / "obs").glob("*.py")}
        assert {"audit.py", "exposure.py"} <= obs

    def test_auditor_is_rng_free(self):
        # stronger than the lint: the auditor must be purely
        # observational, so it never imports random at all
        for name in ("audit.py", "exposure.py"):
            source = (REPO_SRC / "repro" / "obs" / name).read_text()
            assert "import random" not in source, (
                f"repro/obs/{name} must stay RNG-free — auditing cannot "
                "perturb the run it observes"
            )

    def test_fleet_streams_are_derived(self):
        # every fleet RNG must be namespaced per (host, shard); the only
        # Random construction allowed in the package goes through
        # fleet_seed/derived_rng
        from repro.determinism import derive_seed
        from repro.fleet import fleet_seed

        assert fleet_seed(1, 2, 3) == derive_seed(1, "fleet", "h002", "s0003")
        assert fleet_seed(1, 2, 3, "load") != fleet_seed(1, 2, 3)

    def test_lint_pattern_catches_offenses(self):
        assert _UNSEEDED_RANDOM.search("x = random.random()")
        assert _UNSEEDED_RANDOM.search("random.shuffle(items)")
        assert not _UNSEEDED_RANDOM.search("rng = random.Random(seed)")
        assert not _UNSEEDED_RANDOM.search("value = rng.random()")
        assert not _UNSEEDED_RANDOM.search("self.random.choice(x)")
