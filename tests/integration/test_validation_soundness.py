"""Property-based validation soundness.

Two invariants over randomly generated closure programs:

1. **No false positives** — on healthy silicon, re-executing any closure
   yields a bit-identical result, so validation never flags a clean run.
2. **No false negatives for externalized corruption** — if a deterministic
   data-path fault changes a closure's stored outputs or return value, the
   inline validator flags that execution.
"""

from hypothesis import given, settings, strategies as st

from repro.closures.annotation import closure
from repro.closures.context import ops
from repro.closures.syscalls import sys_random
from repro.machine.cpu import Machine
from repro.machine.faults import Fault, FaultKind
from repro.machine.units import Unit
from repro.memory.pointer import orthrus_new
from repro.runtime.orthrus import OrthrusRuntime


@closure(name="soundness.program")
def run_program(cells, program):
    """Interpret a random little data-path program over versioned cells."""
    o = ops()
    accumulator = 1
    for opcode, target, operand in program:
        value = cells[target].load()
        if opcode == "add":
            value = o.alu.add(value, operand)
        elif opcode == "mul":
            value = o.alu.mul(value, 1 + operand % 7)
        elif opcode == "xor":
            value = o.alu.xor(value, operand)
        elif opcode == "fma":
            value = int(o.fpu.fmul(float(value % 1000), 1.5)) + operand
        elif opcode == "vec":
            value = int(o.simd.vsum((value % 256, operand % 256, 3)))
        elif opcode == "rnd":
            value = o.alu.add(value, int(sys_random() * operand) if operand else 0)
        cells[target].store(value)
        accumulator = o.alu.xor(accumulator, value)
    return accumulator


@closure(name="soundness.allocator")
def allocate_some(n):
    handles = [orthrus_new(i * 3) for i in range(n)]
    return handles[-1] if handles else None


program_strategy = st.lists(
    st.tuples(
        st.sampled_from(["add", "mul", "xor", "fma", "vec", "rnd"]),
        st.integers(0, 3),
        st.integers(0, 1000),
    ),
    min_size=1,
    max_size=25,
)


def make_runtime(fault=None):
    machine = Machine(cores_per_node=4, numa_nodes=1)
    if fault is not None:
        machine.arm(0, fault)
    return OrthrusRuntime(machine=machine, app_cores=[0], validation_cores=[1])


@settings(max_examples=40, deadline=None)
@given(program_strategy)
def test_clean_programs_never_flagged(program):
    runtime = make_runtime()
    with runtime:
        cells = [runtime.new(v) for v in (0, 10, -5, 1 << 40)]
        run_program(cells, program)
        run_program(cells, program)  # and again, over the mutated state
    assert runtime.detections == 0
    assert runtime.validations == 2


@settings(max_examples=40, deadline=None)
@given(program_strategy, st.integers(0, 63))
def test_corrupting_faults_always_flagged_or_masked_consistently(program, bit):
    """With a deterministic ALU fault, every execution is either flagged or
    provably masked (final state identical to the clean run)."""
    fault = Fault(unit=Unit.ALU, kind=FaultKind.BITFLIP, bit=bit)

    clean = make_runtime()
    with clean:
        clean_cells = [clean.new(v) for v in (0, 10, -5, 1 << 40)]
        clean_result = run_program(clean_cells, program)

    faulty = make_runtime(fault)
    with faulty:
        cells = [faulty.new(v) for v in (0, 10, -5, 1 << 40)]
        result = run_program(cells, program)

    final_state = [ptr.load() for ptr in cells]
    clean_state = [ptr.load() for ptr in clean_cells]
    corrupted = result != clean_result or final_state != clean_state
    if corrupted:
        assert faulty.detections > 0, (
            f"externalized corruption escaped: {program!r} bit={bit}"
        )
    # The converse does not hold: a run whose *final* state matches the
    # clean run may still have written corrupted values transiently (e.g.
    # two flips cancelling), and Orthrus rightly flags those stores — user
    # data was wrong while it was visible.


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 10))
def test_allocation_counts_validate(n):
    runtime = make_runtime()
    with runtime:
        allocate_some(n)
    assert runtime.detections == 0
