"""Cross-module integration tests: the full detect/miss matrix.

These tests exercise the complete pipeline — machine → apps → runtime →
validator → detection — and pin down Orthrus's documented capabilities
*and* blind spots (§2.3) across all four applications.
"""

import pytest

from repro.apps.lsmtree import LsmTreeServer
from repro.apps.masstree import MasstreeServer
from repro.apps.memcached import MemcachedServer
from repro.apps.phoenix import WordCountJob
from repro.machine.cpu import Machine
from repro.machine.faults import Fault, FaultKind
from repro.machine.instruction import Site
from repro.machine.units import Unit
from repro.runtime.orthrus import OrthrusRuntime
from repro.workloads import (
    AlexWorkload,
    CacheLibWorkload,
    WordCountCorpus,
    YcsbWriteWorkload,
)


def make_runtime(fault=None, **kwargs):
    machine = Machine(cores_per_node=4, numa_nodes=1)
    if fault is not None:
        machine.arm(0, fault)
    return OrthrusRuntime(
        machine=machine, app_cores=[0], validation_cores=[1], **kwargs
    )


UNIT_FAULTS = {
    Unit.ALU: Fault(unit=Unit.ALU, kind=FaultKind.BITFLIP, bit=5, trigger_rate=0.3),
    Unit.FPU: Fault(unit=Unit.FPU, kind=FaultKind.BITFLIP, bit=62, trigger_rate=0.3),
    Unit.SIMD: Fault(unit=Unit.SIMD, kind=FaultKind.BITFLIP, bit=40, trigger_rate=0.3),
    Unit.CACHE: Fault(unit=Unit.CACHE, kind=FaultKind.BITFLIP, bit=3, trigger_rate=0.1),
}


def drive_memcached(runtime, n_ops=200):
    server = MemcachedServer(runtime, n_buckets=32)
    for op in CacheLibWorkload(n_keys=50, seed=5).ops(n_ops):
        try:
            server.handle(op)
        except Exception:
            pass
    return server


class TestDetectionMatrix:
    """Unit-level faults against the app that exercises each unit."""

    def test_memcached_alu(self):
        runtime = make_runtime(UNIT_FAULTS[Unit.ALU])
        drive_memcached(runtime)
        assert runtime.detections > 0

    def test_memcached_simd(self):
        runtime = make_runtime(UNIT_FAULTS[Unit.SIMD])
        drive_memcached(runtime)
        assert runtime.detections > 0

    def test_masstree_cache(self):
        runtime = make_runtime(UNIT_FAULTS[Unit.CACHE])
        server = MasstreeServer(runtime, order=8)
        for op in AlexWorkload(n_keys=60, seed=5).ops(150):
            try:
                server.handle(op)
            except Exception:
                pass
        assert runtime.detections > 0

    def test_lsmtree_fpu(self):
        runtime = make_runtime(UNIT_FAULTS[Unit.FPU])
        server = LsmTreeServer(runtime, memtable_limit=64, seed=5)
        for op in YcsbWriteWorkload(n_keys=60, seed=5).ops(150):
            try:
                server.handle(op)
            except Exception:
                pass
        assert runtime.detections > 0

    def test_phoenix_fpu(self):
        runtime = make_runtime(UNIT_FAULTS[Unit.FPU])
        corpus = WordCountCorpus(n_words=2000, vocabulary_size=80, seed=5)
        WordCountJob(runtime, n_partitions=4).run(corpus.chunks())
        assert runtime.detections > 0


class TestBlindSpots:
    """The §2.3 limitations must actually be blind spots."""

    def test_masked_error_not_reported(self):
        # A fault in a unit the app never uses produces nothing.
        runtime = make_runtime(Fault(unit=Unit.FPU, kind=FaultKind.BITFLIP, bit=30))
        server = drive_memcached(runtime)
        assert runtime.detections == 0
        assert len(server.items()) > 0

    def test_syscall_internal_error_invisible(self):
        # LSMTree's level randomness is a recorded syscall: corrupting the
        # replayed value is impossible (replay returns the recorded
        # result), so nothing diverges and nothing is flagged.
        runtime = make_runtime()
        server = LsmTreeServer(runtime, memtable_limit=500, seed=5)
        for op in YcsbWriteWorkload(n_keys=40, seed=5).ops(100):
            server.handle(op)
        assert runtime.detections == 0

    def test_control_dispatch_error_invisible_but_corrupting(self):
        from repro.workloads.base import Op, OpKind

        fault = Fault(unit=Unit.ALU, kind=FaultKind.BITFLIP, bit=0,
                      site=Site("mc.control.dispatch", "eq", 1))
        runtime = make_runtime(fault)
        server = MemcachedServer(runtime, n_buckets=32)
        server.handle(Op(OpKind.SET, "k", "v"))
        server.handle(Op(OpKind.REMOVE, "k"))  # silently served as GET
        assert server.items() == {"k": "v"}     # data corrupted (not removed)
        assert runtime.detections == 0           # and Orthrus cannot see it


class TestDualCorruption:
    def test_identical_faults_on_both_cores_undetectable(self):
        # §2.3 limitation 4: APP and VAL cores corrupt identically.
        machine = Machine(cores_per_node=4, numa_nodes=1)
        fault = Fault(unit=Unit.ALU, kind=FaultKind.BITFLIP, bit=5,
                      site=Site("mc.set", "hash64", 0))
        machine.arm(0, fault)
        machine.arm(1, fault)
        runtime = OrthrusRuntime(machine=machine, app_cores=[0], validation_cores=[1])
        from repro.workloads.base import Op, OpKind

        server = MemcachedServer(runtime, n_buckets=32)
        server.handle(Op(OpKind.SET, "k", "v"))
        assert runtime.detections == 0  # both executions equally wrong


class TestMultiAppIsolation:
    def test_two_runtimes_do_not_interfere(self):
        faulty = make_runtime(UNIT_FAULTS[Unit.ALU])
        clean = make_runtime()
        server_faulty = MemcachedServer(faulty, n_buckets=32)
        server_clean = MemcachedServer(clean, n_buckets=32)
        for op in CacheLibWorkload(n_keys=30, seed=5).ops(100):
            try:
                server_faulty.handle(op)
            except Exception:
                pass
            server_clean.handle(op)
        assert faulty.detections > 0
        assert clean.detections == 0


class TestAbortOnDetection:
    def test_strict_deployment_stops_before_externalizing(self):
        from repro.errors import SdcDetected
        from repro.workloads.base import Op, OpKind

        runtime = make_runtime(
            # bit 2 lands inside the bucket mask, so the flipped hash
            # inserts into the wrong bucket — a guaranteed divergence
            Fault(unit=Unit.ALU, kind=FaultKind.BITFLIP, bit=2,
                  site=Site("mc.set", "hash64", 0)),
            detection_policy="abort",
        )
        server = MemcachedServer(runtime, n_buckets=32)
        with pytest.raises(SdcDetected):
            server.handle(Op(OpKind.SET, "k", "v"))
