"""Outcome classification and coverage aggregation."""

from repro.faultinject.classify import (
    OutcomeKind,
    TrialResult,
    attribution_accuracy,
    classify_outcome,
    coverage_by_unit,
    overall_detection_rate,
)
from repro.harness.pipeline import RunResult
from repro.machine.faults import Fault, FaultKind
from repro.machine.units import Unit
from repro.sim.metrics import RunMetrics


def run(responses=("a", "b"), digest=42, crashed=False):
    return RunResult(
        metrics=RunMetrics(),
        responses=list(responses),
        digest=digest,
        crashed=crashed,
    )


class TestClassifyOutcome:
    def test_identical_is_masked(self):
        assert classify_outcome(run(), run()) is OutcomeKind.MASKED

    def test_crash_is_fail_stop(self):
        assert classify_outcome(run(), run(crashed=True)) is OutcomeKind.FAIL_STOP

    def test_response_divergence_is_sdc(self):
        assert classify_outcome(run(), run(responses=("a", "X"))) is OutcomeKind.SDC

    def test_state_divergence_is_sdc(self):
        assert classify_outcome(run(), run(digest=43)) is OutcomeKind.SDC

    def test_crash_takes_precedence_over_divergence(self):
        trial = run(responses=("X",), digest=1, crashed=True)
        assert classify_outcome(run(), trial) is OutcomeKind.FAIL_STOP


def trial(unit, outcome, orthrus=False, rbv=None, injected=-1, implicated=()):
    return TrialResult(
        fault=Fault(unit=unit, kind=FaultKind.BITFLIP),
        unit=unit,
        outcome=outcome,
        orthrus_detected=orthrus,
        orthrus_kind="mismatch" if orthrus else None,
        rbv_detected=rbv,
        injected_core=injected,
        implicated_cores=tuple(implicated),
    )


class TestAggregation:
    def test_coverage_by_unit(self):
        trials = [
            trial(Unit.ALU, OutcomeKind.SDC, orthrus=True, rbv=True),
            trial(Unit.ALU, OutcomeKind.SDC, orthrus=False, rbv=True),
            trial(Unit.ALU, OutcomeKind.MASKED),
            trial(Unit.FPU, OutcomeKind.SDC, orthrus=True, rbv=False),
        ]
        rows = coverage_by_unit(trials)
        assert rows[Unit.ALU].total_sdcs == 2
        assert rows[Unit.ALU].orthrus_detected == 1
        assert rows[Unit.ALU].rbv_detected == 2
        assert rows[Unit.ALU].orthrus_rate == 0.5
        assert rows[Unit.FPU].total_sdcs == 1
        assert rows[Unit.SIMD].total_sdcs == 0

    def test_overall_detection_rate_ignores_non_sdc(self):
        trials = [
            trial(Unit.ALU, OutcomeKind.MASKED),
            trial(Unit.ALU, OutcomeKind.FAIL_STOP),
            trial(Unit.ALU, OutcomeKind.SDC, orthrus=True),
            trial(Unit.ALU, OutcomeKind.SDC, orthrus=False),
        ]
        assert overall_detection_rate(trials) == 0.5

    def test_empty_trials(self):
        assert overall_detection_rate([]) == 0.0
        rows = coverage_by_unit([])
        assert all(row.total_sdcs == 0 for row in rows.values())


class TestAttribution:
    def test_correct_when_injected_core_implicated(self):
        t = trial(Unit.ALU, OutcomeKind.SDC, orthrus=True,
                  injected=1, implicated=(1,))
        assert t.attribution_correct is True

    def test_wrong_when_other_core_blamed(self):
        t = trial(Unit.ALU, OutcomeKind.SDC, orthrus=True,
                  injected=1, implicated=(0,))
        assert t.attribution_correct is False

    def test_extra_implicated_cores_still_count_as_correct(self):
        t = trial(Unit.ALU, OutcomeKind.SDC, orthrus=True,
                  injected=1, implicated=(0, 1))
        assert t.attribution_correct is True

    def test_unscorable_cases_are_none(self):
        undetected = trial(Unit.ALU, OutcomeKind.SDC,
                           injected=1, implicated=(1,))
        no_ground_truth = trial(Unit.ALU, OutcomeKind.SDC, orthrus=True,
                                implicated=(1,))
        no_implication = trial(Unit.ALU, OutcomeKind.SDC, orthrus=True,
                               injected=1)
        assert undetected.attribution_correct is None
        assert no_ground_truth.attribution_correct is None
        assert no_implication.attribution_correct is None

    def test_accuracy_over_scorable_trials_only(self):
        trials = [
            trial(Unit.ALU, OutcomeKind.SDC, orthrus=True,
                  injected=1, implicated=(1,)),
            trial(Unit.ALU, OutcomeKind.SDC, orthrus=True,
                  injected=1, implicated=(0,)),
            trial(Unit.ALU, OutcomeKind.SDC),  # unscorable, excluded
        ]
        assert attribution_accuracy(trials) == 0.5

    def test_accuracy_none_when_nothing_scorable(self):
        assert attribution_accuracy([]) is None
        assert attribution_accuracy(
            [trial(Unit.ALU, OutcomeKind.MASKED)]
        ) is None
