"""Injection-config validation and fault-count splitting."""

import pytest

from repro.errors import FaultInjectionError
from repro.faultinject.config import InjectionConfig
from repro.machine.units import Unit


class TestValidation:
    def test_defaults_valid(self):
        InjectionConfig()

    def test_zero_faults_rejected(self):
        with pytest.raises(FaultInjectionError):
            InjectionConfig(n_faults=0)

    def test_empty_kinds_rejected(self):
        with pytest.raises(FaultInjectionError):
            InjectionConfig(kinds=())

    def test_bad_bit_range_rejected(self):
        with pytest.raises(FaultInjectionError):
            InjectionConfig(bit_range=(10, 5))
        with pytest.raises(FaultInjectionError):
            InjectionConfig(bit_range=(0, 65))

    def test_bad_trigger_rate_rejected(self):
        with pytest.raises(FaultInjectionError):
            InjectionConfig(trigger_rate=0.0)
        with pytest.raises(FaultInjectionError):
            InjectionConfig(trigger_rate=1.5)


class TestFaultCounts:
    def test_ratio_respected_when_all_units_available(self):
        config = InjectionConfig(n_faults=60)
        counts = config.fault_counts(set(Unit))
        assert counts[Unit.SIMD] == 20
        assert counts[Unit.FPU] == 20
        assert counts[Unit.ALU] == 10
        assert counts[Unit.CACHE] == 10

    def test_total_always_matches(self):
        for n in (1, 7, 13, 60, 101):
            counts = InjectionConfig(n_faults=n).fault_counts(set(Unit))
            assert sum(counts.values()) == n

    def test_missing_units_excluded(self):
        # A program with no fp instructions gets no fp faults (Table 2's
        # zero cells).
        config = InjectionConfig(n_faults=40)
        counts = config.fault_counts({Unit.ALU, Unit.SIMD, Unit.CACHE})
        assert Unit.FPU not in counts
        assert sum(counts.values()) == 40

    def test_disjoint_units_raise(self):
        config = InjectionConfig(unit_ratio={Unit.FPU: 1})
        with pytest.raises(FaultInjectionError):
            config.fault_counts({Unit.ALU})
