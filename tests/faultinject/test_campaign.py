"""End-to-end fault-injection campaign tests (small scale)."""

import pytest

from repro.faultinject.campaign import FaultInjectionCampaign
from repro.faultinject.classify import OutcomeKind
from repro.faultinject.config import InjectionConfig
from repro.harness.pipeline import PipelineConfig
from repro.harness.scenarios import memcached_scenario
from repro.machine.units import Unit


@pytest.fixture(scope="module")
def campaign():
    return FaultInjectionCampaign(
        memcached_scenario(n_keys=40),
        workload_size=200,
        injection=InjectionConfig(n_faults=16, seed=7),
        make_pipeline=lambda: PipelineConfig(
            app_threads=2, validation_cores=2, seed=9
        ),
        rbv_runner=None,
    )


@pytest.fixture(scope="module")
def result(campaign):
    return campaign.run()


class TestProfiling:
    def test_sites_cover_data_and_control_path(self, campaign):
        sites, _ = campaign.profile()
        functions = {site.function for site in sites}
        assert "mc.set" in functions
        assert "mc.get" in functions
        assert any(fn.startswith("mc.control") for fn in functions)

    def test_units_classified(self, campaign):
        sites, _ = campaign.profile()
        units = set(sites.values())
        assert Unit.ALU in units
        assert Unit.SIMD in units
        assert Unit.CACHE in units
        assert Unit.FPU not in units  # memcached has no fp instructions

    def test_golden_run_clean(self, campaign):
        _, golden = campaign.profile()
        assert not golden.crashed
        assert golden.detections == 0


class TestPlanning:
    def test_fault_count_matches_config(self, campaign):
        sites, _ = campaign.profile()
        faults = campaign.plan_faults(sites)
        assert len(faults) == 16

    def test_no_fp_faults_for_memcached(self, campaign):
        sites, _ = campaign.profile()
        faults = campaign.plan_faults(sites)
        assert all(fault.unit is not Unit.FPU for fault in faults)

    def test_faults_pinned_to_profiled_sites(self, campaign):
        sites, _ = campaign.profile()
        for fault in campaign.plan_faults(sites):
            assert fault.site in sites
            assert sites[fault.site] is fault.unit

    def test_planning_deterministic(self):
        def fresh():
            return FaultInjectionCampaign(
                memcached_scenario(n_keys=40),
                workload_size=200,
                injection=InjectionConfig(n_faults=8, seed=7),
                make_pipeline=lambda: PipelineConfig(seed=9),
                rbv_runner=None,
            )

        a, b = fresh(), fresh()
        sites_a, _ = a.profile()
        sites_b, _ = b.profile()
        assert a.plan_faults(sites_a) == b.plan_faults(sites_b)


class TestTrials:
    def test_every_trial_classified(self, result):
        assert len(result.trials) == 16
        assert all(t.outcome in OutcomeKind for t in result.trials)

    def test_sdc_trials_exist(self, result):
        # With 16 deterministic persistent faults on a 200-op run, some
        # must silently corrupt data.
        assert len(result.sdc_trials) > 0

    def test_full_capacity_detects_data_path_sdcs(self, result):
        # Control-path dispatch faults are Orthrus's documented blind spot;
        # everything else must be caught at full validation capacity.
        missed = [
            t
            for t in result.sdc_trials
            if not t.orthrus_detected
            and not t.fault.site.function.startswith("mc.control")
        ]
        assert missed == []

    def test_coverage_table_consistent(self, result):
        rows = result.coverage_table()
        assert sum(r.total_sdcs for r in rows.values()) == len(result.sdc_trials)

    def test_outcome_counts_total(self, result):
        assert sum(result.outcome_counts().values()) == 16


class TestAttributionGroundTruth:
    def test_every_trial_records_the_armed_core(self, result):
        assert all(0 <= t.injected_core < 2 for t in result.trials)

    def test_detected_trials_are_scorable(self, result):
        scorable = [
            t for t in result.trials if t.attribution_correct is not None
        ]
        assert scorable, "detection events must implicate cores"

    def test_detection_blames_the_armed_core(self, result):
        # Mismatch events tag the APP core that ran the closure; with one
        # persistent armed core per trial that must be the injected core.
        accuracy = result.attribution_accuracy
        assert accuracy is not None
        assert accuracy >= 0.5

    def test_campaign_property_matches_module_function(self, result):
        from repro.faultinject.classify import attribution_accuracy

        assert result.attribution_accuracy == attribution_accuracy(result.trials)
