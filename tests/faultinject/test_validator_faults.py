"""Validator chaos config: parsing, deterministic planning, digests."""

import pytest

from repro.errors import ConfigurationError
from repro.faultinject.validator_faults import (
    ValidatorChaosConfig,
    ValidatorFault,
    ValidatorFaultBox,
    ValidatorFaultKind,
)


class TestParse:
    def test_fraction_and_count(self):
        config = ValidatorChaosConfig.parse(["crash=0.25", "hang=2"], seed=3)
        assert config.specs == (("crash", 0.25), ("hang", 2.0))
        assert config.seed == 3

    def test_bare_kind_means_one_core(self):
        config = ValidatorChaosConfig.parse(["slowdown"])
        assert config.specs == (("slowdown", 1.0),)

    @pytest.mark.parametrize(
        "spec", ["meltdown=0.5", "crash=zero", "crash=-1", "crash=0"]
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ConfigurationError):
            ValidatorChaosConfig.parse([spec])


class TestPlan:
    def test_fraction_rounds_up(self):
        config = ValidatorChaosConfig(specs=(("crash", 0.25),), seed=1)
        faults = config.plan([4, 5, 6, 7])
        assert len(faults) == 1
        assert faults[0].kind is ValidatorFaultKind.CRASH

    def test_amount_one_is_whole_pool_as_fraction_boundary(self):
        # amount >= 1 is an absolute count.
        config = ValidatorChaosConfig(specs=(("hang", 1),), seed=1)
        assert len(config.plan([4, 5, 6, 7])) == 1
        config = ValidatorChaosConfig(specs=(("hang", 4),), seed=1)
        assert len(config.plan([4, 5, 6, 7])) == 4

    def test_deterministic_from_seed(self):
        config = ValidatorChaosConfig(specs=(("crash", 0.5),), seed=9)
        assert config.plan([1, 2, 3, 4]) == config.plan([1, 2, 3, 4])

    def test_different_seeds_differ(self):
        plans = {
            ValidatorChaosConfig(specs=(("crash", 0.5),), seed=s).plan(
                list(range(8, 20))
            )
            for s in range(6)
        }
        assert len(plans) > 1

    def test_no_core_gets_two_faults(self):
        config = ValidatorChaosConfig(
            specs=(("crash", 2), ("hang", 2), ("slowdown", 2)), seed=4
        )
        faults = config.plan([0, 1, 2, 3])
        cores = [f.core_id for f in faults]
        assert len(cores) == len(set(cores)) == 4

    def test_plan_carries_timing_knobs(self):
        config = ValidatorChaosConfig(
            specs=(("slowdown", 1),),
            seed=2,
            arm_at=1e-3,
            duration=2e-3,
            slowdown_factor=16.0,
        )
        (fault,) = config.plan([5])
        assert fault.at == 1e-3
        assert fault.duration == 2e-3
        assert fault.slowdown_factor == 16.0

    def test_digest_stable_and_sensitive(self):
        a = ValidatorChaosConfig(specs=(("crash", 0.25),), seed=1)
        b = ValidatorChaosConfig(specs=(("crash", 0.25),), seed=1)
        c = ValidatorChaosConfig(specs=(("crash", 0.25),), seed=2)
        assert a.digest() == b.digest()
        assert a.digest() != c.digest()


class TestFaultActivation:
    def test_windowed_fault(self):
        fault = ValidatorFault(
            kind=ValidatorFaultKind.HANG, core_id=1, at=1.0, duration=2.0
        )
        assert not fault.active(0.5)
        assert fault.active(1.0)
        assert fault.active(2.9)
        assert not fault.active(3.0)

    def test_permanent_fault(self):
        fault = ValidatorFault(kind=ValidatorFaultKind.CRASH, core_id=1)
        assert fault.active(0.0) and fault.active(1e9)


class TestFaultBox:
    def test_lookup_and_disarm(self):
        fault = ValidatorFault(kind=ValidatorFaultKind.SLOWDOWN, core_id=3)
        box = ValidatorFaultBox((fault,))
        assert box.fault_for(3, now=0.0) is fault
        assert box.fault_for(2, now=0.0) is None
        assert box.faulted_cores == [3]
        box.disarm(3)
        assert box.fault_for(3, now=0.0) is None

    def test_inactive_fault_invisible(self):
        fault = ValidatorFault(kind=ValidatorFaultKind.CRASH, core_id=3, at=5.0)
        box = ValidatorFaultBox((fault,))
        assert box.fault_for(3, now=1.0) is None
        assert box.fault_for(3, now=5.0) is fault

    def test_duplicate_core_rejected(self):
        faults = (
            ValidatorFault(kind=ValidatorFaultKind.CRASH, core_id=3),
            ValidatorFault(kind=ValidatorFaultKind.HANG, core_id=3),
        )
        with pytest.raises(ConfigurationError):
            ValidatorFaultBox(faults)
