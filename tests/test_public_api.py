"""Public-API surface tests: the README/docstring contracts hold."""

import repro


def test_version_exposed():
    assert repro.__version__


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_module_docstring_quickstart_runs():
    """The example in ``repro.__doc__`` must work exactly as written."""
    from repro import OrthrusRuntime, closure, ops

    @closure
    def bump(ptr, delta):
        value = ptr.load()
        ptr.store(ops().alu.add(value, delta))

    runtime = OrthrusRuntime()
    with runtime:
        counter = runtime.new(0)
        bump(counter, 5)
    assert runtime.report.detected is False
    assert counter.load() == 5


def test_readme_quickstart_runs():
    from repro import Fault, FaultKind, Machine, OrthrusRuntime, Unit, closure, ops

    @closure(name="bank.deposit.readme")
    def deposit(account, amount):
        balance = account.load()
        account.store(ops().alu.add(balance, amount))

    machine = Machine(cores_per_node=4, numa_nodes=1)
    machine.arm(0, Fault(unit=Unit.ALU, kind=FaultKind.BITFLIP, bit=7))

    runtime = OrthrusRuntime(machine=machine, app_cores=[0], validation_cores=[1])
    with runtime:
        account = runtime.new(1_000)
        deposit(account, 100)

    assert runtime.detections == 1
    assert runtime.report.first is not None


def test_subpackages_importable():
    import repro.apps
    import repro.baselines
    import repro.faultinject
    import repro.harness
    import repro.sim
    import repro.workloads

    assert repro.harness.memcached_scenario().name == "memcached"
    assert repro.faultinject.InjectionConfig().n_faults > 0
