"""Clock and detection-report tests."""

import pytest

from repro.clock import LogicalClock, ManualClock
from repro.detection import DetectionEvent, DetectionReport


class TestLogicalClock:
    def test_starts_at_zero(self):
        assert LogicalClock().now() == 0.0

    def test_tick_advances(self):
        clock = LogicalClock()
        clock.tick()
        clock.tick(2.5)
        assert clock.now() == 3.5

    def test_negative_tick_rejected(self):
        with pytest.raises(ValueError):
            LogicalClock().tick(-1.0)

    def test_custom_start(self):
        assert LogicalClock(start=10.0).now() == 10.0


class TestManualClock:
    def test_set_forward(self):
        clock = ManualClock()
        clock.set(5.0)
        assert clock.now() == 5.0

    def test_set_backward_rejected(self):
        clock = ManualClock()
        clock.set(5.0)
        with pytest.raises(ValueError):
            clock.set(4.0)


def event(kind="mismatch", seq=1):
    return DetectionEvent(kind=kind, closure="op", seq=seq, time=0.0)


class TestDetectionReport:
    def test_empty_report(self):
        report = DetectionReport()
        assert not report.detected
        assert report.first is None
        assert report.count() == 0

    def test_record_and_count(self):
        report = DetectionReport()
        report.record(event("mismatch"))
        report.record(event("checksum"))
        report.record(event("mismatch"))
        assert report.detected
        assert report.count() == 3
        assert report.count("mismatch") == 2
        assert report.count("checksum") == 1

    def test_first_is_earliest_recorded(self):
        report = DetectionReport()
        report.record(event(seq=7))
        report.record(event(seq=9))
        assert report.first.seq == 7

    def test_clear(self):
        report = DetectionReport()
        report.record(event())
        report.clear()
        assert not report.detected
