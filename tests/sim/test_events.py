"""Discrete-event engine tests."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import Environment, SimClock


class TestTimeouts:
    def test_time_advances_to_timeout(self):
        env = Environment()
        env.timeout(5.0)
        env.run()
        assert env.now == 5.0

    def test_negative_timeout_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.timeout(-1.0)

    def test_run_until_horizon_stops_early(self):
        env = Environment()
        env.timeout(10.0)
        env.run(until=3.0)
        assert env.now <= 3.0


class TestProcesses:
    def test_process_sequences_timeouts(self):
        trace = []

        def proc(env):
            trace.append(env.now)
            yield env.timeout(1.0)
            trace.append(env.now)
            yield env.timeout(2.0)
            trace.append(env.now)

        env = Environment()
        env.process(proc(env))
        env.run()
        assert trace == [0.0, 1.0, 3.0]

    def test_processes_interleave_by_time(self):
        order = []

        def worker(env, name, delay):
            yield env.timeout(delay)
            order.append(name)

        env = Environment()
        env.process(worker(env, "late", 2.0))
        env.process(worker(env, "early", 1.0))
        env.run()
        assert order == ["early", "late"]

    def test_process_return_value_via_run_until(self):
        def proc(env):
            yield env.timeout(1.0)
            return 42

        env = Environment()
        process = env.process(proc(env))
        assert env.run(until=process) == 42

    def test_process_can_wait_on_process(self):
        def inner(env):
            yield env.timeout(2.0)
            return "inner-result"

        def outer(env):
            result = yield env.process(inner(env))
            return result

        env = Environment()
        process = env.process(outer(env))
        assert env.run(until=process) == "inner-result"

    def test_yielding_non_event_raises(self):
        def bad(env):
            yield 42

        env = Environment()
        env.process(bad(env))
        with pytest.raises(SimulationError):
            env.run()

    def test_timeout_value_delivered(self):
        def proc(env):
            value = yield env.timeout(1.0, value="payload")
            return value

        env = Environment()
        process = env.process(proc(env))
        assert env.run(until=process) == "payload"


class TestEvents:
    def test_succeed_wakes_waiter(self):
        env = Environment()
        gate = env.event()
        results = []

        def waiter(env):
            value = yield gate
            results.append((env.now, value))

        def opener(env):
            yield env.timeout(3.0)
            gate.succeed("open")

        env.process(waiter(env))
        env.process(opener(env))
        env.run()
        assert results == [(3.0, "open")]

    def test_double_trigger_raises(self):
        env = Environment()
        event = env.event()
        event.succeed(1)
        with pytest.raises(SimulationError):
            event.succeed(2)

    def test_all_of(self):
        def worker(env, delay, value):
            yield env.timeout(delay)
            return value

        def coordinator(env):
            tasks = [env.process(worker(env, d, d * 10)) for d in (3.0, 1.0, 2.0)]
            results = yield env.all_of(tasks)
            return results

        env = Environment()
        process = env.process(coordinator(env))
        assert env.run(until=process) == [30.0, 10.0, 20.0]
        assert env.now == 3.0

    def test_all_of_empty(self):
        env = Environment()
        done = env.all_of([])
        assert done.triggered or done._scheduled


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        store = env.store()
        store.put("item")

        def consumer(env):
            item = yield store.get()
            return item

        process = env.process(consumer(env))
        assert env.run(until=process) == "item"

    def test_get_blocks_until_put(self):
        env = Environment()
        store = env.store()
        times = []

        def consumer(env):
            item = yield store.get()
            times.append((env.now, item))

        def producer(env):
            yield env.timeout(4.0)
            store.put("late-item")

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert times == [(4.0, "late-item")]

    def test_fifo_ordering(self):
        env = Environment()
        store = env.store()
        received = []

        def consumer(env):
            for _ in range(3):
                item = yield store.get()
                received.append(item)

        def producer(env):
            for item in ("a", "b", "c"):
                yield env.timeout(1.0)
                store.put(item)

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert received == ["a", "b", "c"]

    def test_multiple_getters_served_in_order(self):
        env = Environment()
        store = env.store()
        served = []

        def consumer(env, name):
            item = yield store.get()
            served.append((name, item))

        env.process(consumer(env, "first"))
        env.process(consumer(env, "second"))

        def producer(env):
            yield env.timeout(1.0)
            store.put("x")
            store.put("y")

        env.process(producer(env))
        env.run()
        assert served == [("first", "x"), ("second", "y")]

    def test_len_counts_buffered_items(self):
        env = Environment()
        store = env.store()
        store.put(1)
        store.put(2)
        assert len(store) == 2


class TestDeadlockDetection:
    def test_run_until_unreachable_event_raises(self):
        env = Environment()
        never = env.event()
        with pytest.raises(SimulationError):
            env.run(until=never)


def test_sim_clock_tracks_env():
    env = Environment()
    clock = SimClock(env)
    assert clock.now() == 0.0
    env.timeout(7.5)
    env.run()
    assert clock.now() == 7.5
