"""Metrics helpers."""

import math

import pytest

from repro.sim.metrics import Histogram, RunMetrics, slowdown


class TestHistogram:
    def test_empty_histogram_is_zero(self):
        histogram = Histogram()
        assert histogram.mean == 0.0
        assert histogram.p95 == 0.0
        assert histogram.count == 0

    def test_mean(self):
        histogram = Histogram()
        histogram.extend([1.0, 2.0, 3.0])
        assert histogram.mean == 2.0

    def test_percentiles_ordered(self):
        histogram = Histogram()
        histogram.extend(float(v) for v in range(101))
        assert histogram.p50 <= histogram.p95 <= histogram.p99 <= histogram.max

    def test_percentile_bounds_checked(self):
        with pytest.raises(ValueError):
            Histogram().percentile(101)

    def test_summary_keys(self):
        histogram = Histogram()
        histogram.add(1.0)
        assert set(histogram.summary()) == {"count", "mean", "p50", "p95", "p99", "max"}

    def test_sorted_cache_invalidated_by_add(self):
        histogram = Histogram()
        histogram.extend([5.0, 1.0])
        assert histogram.max == 5.0  # populates the cache
        histogram.add(9.0)
        assert histogram.max == 9.0
        assert histogram.p50 == 5.0

    def test_sorted_cache_invalidated_by_extend(self):
        histogram = Histogram()
        histogram.add(2.0)
        assert histogram.min == 2.0
        histogram.extend([0.5, 1.0])
        assert histogram.min == 0.5
        assert histogram.count == 3

    def test_repeated_queries_consistent(self):
        histogram = Histogram()
        histogram.extend(float(v) for v in range(50))
        first = histogram.summary()
        assert histogram.summary() == first  # served from the cache

    def test_values_returns_insertion_order(self):
        histogram = Histogram()
        histogram.extend([3.0, 1.0, 2.0])
        assert histogram.values() == [3.0, 1.0, 2.0]


class TestRunMetrics:
    def test_throughput(self):
        metrics = RunMetrics(operations=100, duration=2.0)
        assert metrics.throughput == 50.0

    def test_throughput_zero_duration(self):
        assert RunMetrics(operations=10, duration=0.0).throughput == 0.0

    def test_memory_overhead(self):
        metrics = RunMetrics(peak_versioned_bytes=130, peak_live_bytes=100)
        assert metrics.memory_overhead == pytest.approx(0.3)

    def test_sampling_fraction(self):
        metrics = RunMetrics(validated=30, skipped=70)
        assert metrics.sampling_fraction == pytest.approx(0.3)
        assert RunMetrics().sampling_fraction == 1.0


class TestRegistryView:
    """RunMetrics re-expressed over the observability registry."""

    def make_metrics(self):
        metrics = RunMetrics(
            operations=200,
            duration=2.0,
            validated=150,
            skipped=50,
            detections=3,
            peak_versioned_bytes=1300,
            peak_live_bytes=1000,
        )
        metrics.request_latency.extend([1e-6, 2e-6, 3e-6])
        metrics.validation_latency.extend([4e-6, 8e-6])
        return metrics

    def test_view_matches_source_metrics(self):
        from repro.obs import MetricsRegistry
        from repro.sim.metrics import RunMetricsView

        metrics = self.make_metrics()
        registry = MetricsRegistry()
        metrics.export_to(registry)
        view = RunMetricsView(registry)
        assert view.operations == metrics.operations
        assert view.duration == metrics.duration
        assert view.validated == metrics.validated
        assert view.skipped == metrics.skipped
        assert view.detections == metrics.detections
        assert view.throughput == metrics.throughput
        assert view.memory_overhead == pytest.approx(metrics.memory_overhead)
        assert view.sampling_fraction == pytest.approx(metrics.sampling_fraction)
        assert view.request_latency.count == metrics.request_latency.count
        assert view.request_latency.mean == pytest.approx(
            metrics.request_latency.mean
        )
        assert view.validation_latency.max == metrics.validation_latency.max

    def test_view_survives_snapshot_round_trip(self):
        import json

        from repro.obs import MetricsRegistry
        from repro.sim.metrics import RunMetricsView

        metrics = self.make_metrics()
        registry = MetricsRegistry()
        metrics.export_to(registry)
        restored = MetricsRegistry.from_snapshot(
            json.loads(json.dumps(registry.snapshot()))
        )
        view = RunMetricsView(restored)
        assert view.operations == metrics.operations
        assert view.validation_latency.count == 2

    def test_empty_view_defaults(self):
        from repro.obs import MetricsRegistry
        from repro.sim.metrics import RunMetricsView

        view = RunMetricsView(MetricsRegistry())
        assert view.operations == 0
        assert view.throughput == 0.0
        assert view.request_latency.count == 0


class TestSlowdown:
    def test_four_percent_overhead(self):
        assert slowdown(104.0, 100.0) == pytest.approx(0.04)

    def test_zero_throughput_is_infinite(self):
        assert math.isinf(slowdown(100.0, 0.0))
