"""Metrics helpers."""

import math

import pytest

from repro.sim.metrics import Histogram, RunMetrics, slowdown


class TestHistogram:
    def test_empty_histogram_is_zero(self):
        histogram = Histogram()
        assert histogram.mean == 0.0
        assert histogram.p95 == 0.0
        assert histogram.count == 0

    def test_mean(self):
        histogram = Histogram()
        histogram.extend([1.0, 2.0, 3.0])
        assert histogram.mean == 2.0

    def test_percentiles_ordered(self):
        histogram = Histogram()
        histogram.extend(float(v) for v in range(101))
        assert histogram.p50 <= histogram.p95 <= histogram.p99 <= histogram.max

    def test_percentile_bounds_checked(self):
        with pytest.raises(ValueError):
            Histogram().percentile(101)

    def test_summary_keys(self):
        histogram = Histogram()
        histogram.add(1.0)
        assert set(histogram.summary()) == {"count", "mean", "p50", "p95", "p99", "max"}


class TestRunMetrics:
    def test_throughput(self):
        metrics = RunMetrics(operations=100, duration=2.0)
        assert metrics.throughput == 50.0

    def test_throughput_zero_duration(self):
        assert RunMetrics(operations=10, duration=0.0).throughput == 0.0

    def test_memory_overhead(self):
        metrics = RunMetrics(peak_versioned_bytes=130, peak_live_bytes=100)
        assert metrics.memory_overhead == pytest.approx(0.3)

    def test_sampling_fraction(self):
        metrics = RunMetrics(validated=30, skipped=70)
        assert metrics.sampling_fraction == pytest.approx(0.3)
        assert RunMetrics().sampling_fraction == 1.0


class TestSlowdown:
    def test_four_percent_overhead(self):
        assert slowdown(104.0, 100.0) == pytest.approx(0.04)

    def test_zero_throughput_is_infinite(self):
        assert math.isinf(slowdown(100.0, 0.0))
