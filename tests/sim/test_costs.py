"""Cost-model tests."""

import pytest

from repro.sim.costs import CPU_FREQ_HZ, DEFAULT_COSTS, CostModel, cycles_to_seconds


class TestConversions:
    def test_cycles_to_seconds(self):
        assert cycles_to_seconds(CPU_FREQ_HZ) == 1.0
        assert cycles_to_seconds(0) == 0.0

    def test_model_seconds_uses_own_frequency(self):
        model = CostModel(freq_hz=1e9)
        assert model.seconds(1e9) == 1.0


class TestNetworkTransfer:
    def test_latency_floor(self):
        model = DEFAULT_COSTS
        assert model.network_transfer_s(0) == model.network_latency_s

    def test_bandwidth_term_scales(self):
        model = DEFAULT_COSTS
        small = model.network_transfer_s(1_000)
        big = model.network_transfer_s(1_000_000)
        assert big > small
        assert big - model.network_latency_s == pytest.approx(
            1_000_000 * 8 / model.network_bandwidth_bps
        )


class TestChecksumCosts:
    def test_checksum_cycles_scale_with_bytes(self):
        model = DEFAULT_COSTS
        assert model.checksum_cycles(1000) > model.checksum_cycles(10)

    def test_without_checksums_zeroes_terms(self):
        model = DEFAULT_COSTS.without_checksums()
        assert model.checksum_cycles(1_000_000) == 0
        # other knobs untouched
        assert model.log_base_cycles == DEFAULT_COSTS.log_base_cycles


def test_model_is_frozen():
    with pytest.raises(Exception):
        DEFAULT_COSTS.log_base_cycles = 0
