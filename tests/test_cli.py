"""Command-line interface tests."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["perf"])
        assert args.app == "memcached"
        assert args.threads == 2
        assert args.cores == 2

    def test_coverage_flags(self):
        args = build_parser().parse_args(
            ["coverage", "--app", "lsmtree", "--faults", "8", "--rbv",
             "--trigger-rate", "0.5"]
        )
        assert args.app == "lsmtree"
        assert args.faults == 8
        assert args.rbv is True
        assert args.trigger_rate == 0.5


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for app in ("memcached", "masstree", "lsmtree", "phoenix"):
            assert app in out

    def test_perf_small(self, capsys):
        assert main(["perf", "--app", "memcached", "--ops", "200"]) == 0
        out = capsys.readouterr().out
        assert "vanilla throughput" in out
        assert "orthrus overhead" in out

    def test_latency_small(self, capsys):
        assert main(["latency", "--app", "memcached", "--ops", "200"]) == 0
        out = capsys.readouterr().out
        assert "orthrus validation latency" in out
        assert "rbv validation latency" in out

    def test_coverage_small(self, capsys):
        assert main(
            ["coverage", "--app", "memcached", "--ops", "200", "--faults", "6"]
        ) == 0
        out = capsys.readouterr().out
        assert "detection rate" in out

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            main(["perf", "--app", "redis"])


class TestObservabilityFlags:
    def test_metrics_and_trace_export(self, tmp_path, capsys):
        metrics = tmp_path / "run.json"
        trace = tmp_path / "run.jsonl"
        assert main([
            "perf", "--app", "memcached", "--ops", "200",
            "--metrics-out", str(metrics), "--trace-out", str(trace),
        ]) == 0
        out = capsys.readouterr().out
        assert "metrics snapshot" in out
        assert "trace events" in out

        from repro.obs import MetricsRegistry, load_metrics_json, read_trace_jsonl

        registry = MetricsRegistry.from_snapshot(load_metrics_json(str(metrics)))
        assert registry.value("orthrus_requests_total") == 200.0
        assert registry.value("run_operations_total") == 200.0
        events = read_trace_jsonl(str(trace))
        assert any(e["kind"] == "closure.run" for e in events)
        assert any(e["kind"] == "validator.validate" for e in events)

    def test_prom_extension_writes_prometheus_text(self, tmp_path, capsys):
        metrics = tmp_path / "run.prom"
        assert main([
            "perf", "--app", "memcached", "--ops", "200",
            "--metrics-out", str(metrics),
        ]) == 0
        text = metrics.read_text()
        assert "# TYPE orthrus_validations_total counter" in text

    def test_obs_summary_renders_saved_snapshot(self, tmp_path, capsys):
        metrics = tmp_path / "run.json"
        main([
            "latency", "--app", "memcached", "--ops", "200",
            "--metrics-out", str(metrics),
        ])
        capsys.readouterr()
        assert main(["obs-summary", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "orthrus_validations_total" in out
        assert main(["obs-summary", str(metrics), "--format", "prom"]) == 0
        assert "# TYPE" in capsys.readouterr().out

    def test_coverage_accepts_metrics_out(self, tmp_path, capsys):
        metrics = tmp_path / "campaign.json"
        assert main([
            "coverage", "--app", "memcached", "--ops", "150", "--faults", "4",
            "--metrics-out", str(metrics),
        ]) == 0
        assert metrics.exists()

    def test_no_flags_no_export(self, capsys):
        assert main(["perf", "--app", "memcached", "--ops", "200"]) == 0
        out = capsys.readouterr().out
        assert "metrics snapshot" not in out

    def test_bad_export_path_fails_before_the_run(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot write"):
            main([
                "perf", "--app", "memcached", "--ops", "200",
                "--metrics-out", str(tmp_path / "missing-dir" / "x.json"),
            ])

    def test_obs_summary_rejects_non_snapshot_json(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"hello": 1}')
        with pytest.raises(SystemExit, match="not an orthrus-metrics/1"):
            main(["obs-summary", str(bad)])

    def test_obs_summary_rejects_missing_and_invalid_files(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read"):
            main(["obs-summary", str(tmp_path / "nope.json")])
        garbage = tmp_path / "garbage.json"
        garbage.write_text("not json")
        with pytest.raises(SystemExit, match="not valid JSON"):
            main(["obs-summary", str(garbage)])

    def test_obs_summary_renders_trace_in_event_seq_order(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        main([
            "perf", "--app", "memcached", "--ops", "200",
            "--trace-out", str(trace),
        ])
        capsys.readouterr()
        assert main(["obs-summary", str(trace)]) == 0
        out = capsys.readouterr().out
        seqs = [
            int(line[1:].split()[0])
            for line in out.splitlines()
            if line.startswith("#")
        ]
        assert seqs and seqs == sorted(seqs)
        assert "closure.run" in out


class TestTimelineFlags:
    def test_perf_timeline_out_writes_artifact_and_evaluates_slos(
        self, tmp_path, capsys
    ):
        artifact = tmp_path / "timeline.json"
        assert main([
            "perf", "--app", "memcached", "--ops", "300",
            "--timeline-out", str(artifact),
        ]) == 0
        out = capsys.readouterr().out
        assert "timeline" in out
        assert "slo detection-latency" in out

        from repro.obs import load_timeline

        series = load_timeline(str(artifact))
        lag = series["validation_lag_p95"]
        assert lag.total_samples > 0
        assert lag.summary()["p95"] > 0

    def test_custom_slo_spec_replaces_defaults(self, tmp_path, capsys):
        artifact = tmp_path / "timeline.json"
        assert main([
            "latency", "--app", "memcached", "--ops", "300",
            "--timeline-out", str(artifact),
            "--slo", "validation_lag_p95 p95 <= 1ns",  # impossible: must breach
        ]) == 0
        out = capsys.readouterr().out
        assert "BREACHED" in out
        assert "detection-latency" not in out

    def test_bad_slo_spec_fails_fast(self, tmp_path):
        with pytest.raises(SystemExit, match="bad SLO"):
            main([
                "perf", "--app", "memcached", "--ops", "100",
                "--timeline-out", str(tmp_path / "t.json"),
                "--slo", "nonsense",
            ])

    def test_timeline_subcommand_renders_artifact(self, tmp_path, capsys):
        artifact = tmp_path / "timeline.json"
        main([
            "perf", "--app", "memcached", "--ops", "300",
            "--timeline-out", str(artifact),
        ])
        capsys.readouterr()
        assert main(["timeline", str(artifact)]) == 0
        out = capsys.readouterr().out
        assert "validation_lag_p95" in out and "queue_depth" in out
        assert main([
            "timeline", str(artifact), "--format", "table",
            "--series", "validation_lag_p95",
        ]) == 0
        table = capsys.readouterr().out
        assert "p95=" in table and "queue_depth" not in table

    def test_timeline_rejects_unknown_series_and_bad_files(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"format": "wrong"}')
        with pytest.raises(SystemExit, match="not an orthrus-timeseries"):
            main(["timeline", str(bad)])


class TestFaultToleranceFlags:
    def test_parser_accepts_ft_flags(self):
        args = build_parser().parse_args([
            "perf", "--validator-faults", "crash=0.25",
            "--validator-faults", "hang=1", "--degradation",
            "--queue-capacity", "32", "--overflow-policy", "reject",
            "--watchdog-deadline", "80e-6",
        ])
        assert args.validator_faults == ["crash=0.25", "hang=1"]
        assert args.degradation is True
        assert args.queue_capacity == 32
        assert args.overflow_policy == "reject"
        assert args.watchdog_deadline == 80e-6

    def test_degradation_flag_reports_conservation(self, capsys):
        assert main([
            "perf", "--app", "memcached", "--ops", "200", "--degradation",
        ]) == 0
        out = capsys.readouterr().out
        assert "log conservation" in out
        assert "(conserved)" in out
        assert "terminal normal" in out

    def test_validator_faults_redispatch_and_ft_json(self, tmp_path, capsys):
        report = tmp_path / "ft.json"
        assert main([
            "latency", "--app", "memcached", "--ops", "300", "--cores", "4",
            "--validator-faults", "crash=0.25",
            "--validator-faults", "hang=0.25",
            "--watchdog-deadline", "80e-6",
            "--ft-json", str(report),
        ]) == 0
        out = capsys.readouterr().out
        assert "re-dispatches" in out
        assert "armed faults" in out
        data = json.loads(report.read_text())
        assert data["conserved"] is True
        assert data["terminal_level"] == "normal"
        assert data["watchdog"]["redispatches"] > 0

    def test_bad_fault_spec_fails_before_the_run(self):
        with pytest.raises(SystemExit, match="unknown validator fault"):
            main(["perf", "--ops", "100", "--validator-faults", "explode=1"])

    def test_respond_embeds_ft_summary_in_json(self, tmp_path, capsys):
        out_json = tmp_path / "incident.json"
        assert main([
            "respond", "--app", "memcached",
            "--validator-faults", "crash=0.25", "--cores", "4",
            "--watchdog-deadline", "80e-6",
            "--json", str(out_json),
        ]) == 0
        assert "validation-plane stress arm" in capsys.readouterr().out
        data = json.loads(out_json.read_text())
        # The incident payload keeps its keys and gains the chaos summary.
        assert data["repair_complete"] is True
        assert data["fault_tolerance"]["conserved"] is True
        assert data["fault_tolerance"]["terminal_level"] == "normal"

    def test_safe_hold_terminal_state_exits_nonzero(self, capsys):
        from argparse import Namespace

        from repro.cli import _finish_fault_tolerance
        from repro.harness.chaos import FaultToleranceReport

        ft = FaultToleranceReport(
            ledger={"enqueued": 1, "validated": 0, "skipped": 0,
                    "dropped": 0, "fallback": 1},
            terminal_level="safe-hold",
            peak_level="safe-hold",
        )
        rc = _finish_fault_tolerance(Namespace(ft=ft), Namespace(ft_json=None))
        assert rc == 2
        assert "SAFE_HOLD" in capsys.readouterr().out


class TestBenchCompare:
    def test_twice_on_identical_config_reports_zero_regressions(
        self, tmp_path, capsys
    ):
        baseline_dir = str(tmp_path / "baselines")
        out_dir = str(tmp_path / "artifacts")
        common = [
            "bench-compare", "--bench", "table2_coverage", "--scale", "0.1",
            "--out-dir", out_dir, "--baseline-dir", baseline_dir,
        ]
        assert main(common + ["--update"]) == 0
        capsys.readouterr()
        assert main(common + ["--tolerance", "0.25"]) == 0
        out = capsys.readouterr().out
        assert "verdict: no regressions" in out
        assert (tmp_path / "artifacts" / "BENCH_table2_coverage.json").exists()

    def test_missing_baseline_skips_without_failing(self, tmp_path, capsys):
        assert main([
            "bench-compare", "--bench", "table2_coverage", "--scale", "0.1",
            "--out-dir", str(tmp_path / "a"),
            "--baseline-dir", str(tmp_path / "nowhere"),
        ]) == 0
        assert "no baseline" in capsys.readouterr().out

    def test_unknown_bench_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown benchmark"):
            main(["bench-compare", "--bench", "fig99",
                  "--out-dir", str(tmp_path)])


class TestSpanAndCanaryFlags:
    def test_spans_out_writes_chrome_trace(self, tmp_path, capsys):
        spans = tmp_path / "spans.json"
        assert main([
            "latency", "--app", "memcached", "--ops", "200",
            "--spans-out", str(spans),
        ]) == 0
        assert "causal spans" in capsys.readouterr().out
        payload = json.loads(spans.read_text())
        assert "traceEvents" in payload

    def test_latency_attrib_decomposes_and_reconciles(self, tmp_path, capsys):
        spans = tmp_path / "spans.json"
        main([
            "latency", "--app", "memcached", "--ops", "200",
            "--spans-out", str(spans),
        ])
        capsys.readouterr()
        assert main(["latency-attrib", str(spans)]) == 0
        out = capsys.readouterr().out
        # at least four causal stages in the waterfall
        for stage in ("closure.run", "queue.wait", "dispatch", "validate"):
            assert stage in out
        assert "(reconciled)" in out

    def test_latency_attrib_accepts_metrics_snapshot(self, tmp_path, capsys):
        snap = tmp_path / "m.json"
        main([
            "latency", "--app", "memcached", "--ops", "200",
            "--metrics-out", str(snap),
        ])
        capsys.readouterr()
        assert main(["latency-attrib", str(snap)]) == 0
        out = capsys.readouterr().out
        assert "queue.wait" in out

    def test_latency_attrib_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(SystemExit, match="not valid JSON"):
            main(["latency-attrib", str(bad)])
        other = tmp_path / "other.json"
        other.write_text(json.dumps({"hello": 1}))
        with pytest.raises(SystemExit, match="traceEvents"):
            main(["latency-attrib", str(other)])
        with pytest.raises(SystemExit, match="cannot read"):
            main(["latency-attrib", str(tmp_path / "missing.json")])

    def test_canary_flags_healthy_run(self, capsys):
        assert main([
            "latency", "--app", "memcached", "--ops", "200",
            "--canary-period", "50e-6",
        ]) == 0
        out = capsys.readouterr().out
        assert "canary liveness    : ok" in out
        assert "organic detections : 0" in out

    def test_obs_summary_exits_3_on_canary_miss(self, tmp_path, capsys):
        snap = tmp_path / "m.json"
        assert main([
            "latency", "--app", "memcached", "--ops", "400",
            "--canary-period", "50e-6", "--validator-faults", "hang=2",
            "--queue-capacity", "256", "--metrics-out", str(snap),
        ]) == 0
        assert "ALARM" in capsys.readouterr().out
        assert main(["obs-summary", str(snap)]) == 3
        out = capsys.readouterr().out
        assert "canary liveness: ALARM" in out
        assert "per-stage latency waterfall" in out

    def test_timeline_exits_3_on_canary_miss(self, tmp_path, capsys):
        artifact = tmp_path / "t.json"
        main([
            "latency", "--app", "memcached", "--ops", "400",
            "--canary-period", "50e-6", "--validator-faults", "hang=2",
            "--queue-capacity", "256", "--timeline-out", str(artifact),
        ])
        capsys.readouterr()
        assert main(["timeline", str(artifact)]) == 3
        assert "canary liveness: ALARM" in capsys.readouterr().out

    def test_obs_summary_healthy_snapshot_exits_zero(self, tmp_path, capsys):
        snap = tmp_path / "m.json"
        main([
            "latency", "--app", "memcached", "--ops", "200",
            "--canary-period", "50e-6", "--metrics-out", str(snap),
        ])
        capsys.readouterr()
        assert main(["obs-summary", str(snap)]) == 0
        assert "canary liveness: ok" in capsys.readouterr().out


class TestRosterDrift:
    """The subcommand roster is generated, not hand-maintained."""

    def test_handlers_match_registered_subparsers(self):
        from repro.cli import _HANDLERS, subcommand_names

        assert set(subcommand_names()) == set(_HANDLERS)

    def test_list_output_names_every_subcommand(self, capsys):
        from repro.cli import subcommand_names

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in subcommand_names():
            if name != "list":
                assert name in out

    def test_epilog_names_every_subcommand(self):
        from repro.cli import subcommand_names

        parser = build_parser()
        for name in subcommand_names(parser):
            assert name in parser.epilog


class TestDoctor:
    def test_default_configs_are_clean(self, capsys):
        assert main(["doctor"]) == 0
        out = capsys.readouterr().out
        assert "no contradictions found" in out
        assert "0 error(s)" in out

    def test_bad_fleet_fixture_names_the_rules(self, capsys):
        rc = main(["doctor", "--config",
                   "tests/fixtures/doctor_bad_fleet.json"])
        assert rc == 1
        out = capsys.readouterr().out
        for rule in ("shards-exceed-cores", "validator-pool-quarantined",
                     "watchdog-exceeds-slo"):
            assert rule in out

    def test_bad_pipeline_fixture_names_the_rules(self, capsys):
        rc = main(["doctor", "--config",
                   "tests/fixtures/doctor_bad_pipeline.json"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "sampler-target-unknown" in out
        assert "canary-deadline-inverted" in out

    def test_flags_overlay_contradictions(self, capsys):
        rc = main([
            "doctor", "--sampler-target", "bogus.closure",
            "--canary-period", "1e-3", "--canary-deadline", "1e-4",
            "--watchdog-deadline", "5e-3",
            "--slo", "validation_lag_p95 p95 <= 200us",
        ])
        assert rc == 1
        out = capsys.readouterr().out
        assert "sampler-target-unknown" in out
        assert "canary-deadline-inverted" in out
        assert "watchdog-exceeds-slo" in out

    def test_empty_validator_pool_flagged(self, capsys):
        assert main(["doctor", "--cores", "0"]) == 1
        assert "validator-pool-empty" in capsys.readouterr().out

    def test_unknown_overflow_policy_flagged(self, capsys):
        assert main([
            "doctor", "--overflow-policy", "drop-newest",
            "--queue-capacity", "16",
        ]) == 1
        assert "overflow-policy-unknown" in capsys.readouterr().out

    def test_json_emits_the_artifact(self, capsys):
        assert main(["doctor", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["format"] == "orthrus-audit/1"
        assert payload["summary"]["ok"] is True
        assert set(payload["targets"]) == {"pipeline", "fleet"}

    def test_artifact_round_trips_through_obs_summary(self, tmp_path, capsys):
        artifact = tmp_path / "audit.json"
        rc = main(["doctor", "--config",
                   "tests/fixtures/doctor_bad_fleet.json",
                   "--out", str(artifact)])
        assert rc == 1
        capsys.readouterr()
        payload = json.loads(artifact.read_text())
        assert payload["format"] == "orthrus-audit/1"
        assert main(["obs-summary", str(artifact)]) == 1
        out = capsys.readouterr().out
        assert "validation-plane audit" in out
        assert "shards-exceed-cores" in out

    def test_unknown_config_section_rejected(self, tmp_path):
        spec = tmp_path / "c.json"
        spec.write_text(json.dumps({"pipelines": {}}))
        with pytest.raises(SystemExit, match="unknown section"):
            main(["doctor", "--config", str(spec)])

    def test_unknown_config_key_rejected(self, tmp_path):
        spec = tmp_path / "c.json"
        spec.write_text(json.dumps({"pipeline": {"valdation_cores": 2}}))
        with pytest.raises(SystemExit, match="unknown pipeline key"):
            main(["doctor", "--config", str(spec)])


class TestAuditFlags:
    def test_clean_run_audit_exits_zero(self, capsys):
        rc = main([
            "perf", "--app", "memcached", "--ops", "300", "--audit",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "validation-plane audit (runtime)" in out
        assert "drift probe(s)" in out

    def test_chaos_run_audit_exits_one_with_artifact(self, tmp_path, capsys):
        artifact = tmp_path / "audit.json"
        rc = main([
            "perf", "--app", "memcached", "--ops", "300", "--cores", "4",
            "--validator-faults", "hang=2",
            "--watchdog-deadline", "80e-6", "--queue-capacity", "16",
            "--audit", "--audit-out", str(artifact),
        ])
        assert rc == 1
        assert "drift-validator-pool" in capsys.readouterr().out
        payload = json.loads(artifact.read_text())
        assert payload["format"] == "orthrus-audit/1"
        assert payload["summary"]["errors"] >= 1
        capsys.readouterr()
        assert main(["obs-summary", str(artifact)]) == 1

    def test_fleet_audit_exits_zero_when_clean(self, capsys):
        rc = main([
            "fleet", "--hosts", "2", "--shards", "2", "--scale", "0.05",
            "--epochs", "24", "--ground-shards", "0", "--audit",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "validation-plane audit (fleet-drift)" in out
