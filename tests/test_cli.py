"""Command-line interface tests."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["perf"])
        assert args.app == "memcached"
        assert args.threads == 2
        assert args.cores == 2

    def test_coverage_flags(self):
        args = build_parser().parse_args(
            ["coverage", "--app", "lsmtree", "--faults", "8", "--rbv",
             "--trigger-rate", "0.5"]
        )
        assert args.app == "lsmtree"
        assert args.faults == 8
        assert args.rbv is True
        assert args.trigger_rate == 0.5


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for app in ("memcached", "masstree", "lsmtree", "phoenix"):
            assert app in out

    def test_perf_small(self, capsys):
        assert main(["perf", "--app", "memcached", "--ops", "200"]) == 0
        out = capsys.readouterr().out
        assert "vanilla throughput" in out
        assert "orthrus overhead" in out

    def test_latency_small(self, capsys):
        assert main(["latency", "--app", "memcached", "--ops", "200"]) == 0
        out = capsys.readouterr().out
        assert "orthrus validation latency" in out
        assert "rbv validation latency" in out

    def test_coverage_small(self, capsys):
        assert main(
            ["coverage", "--app", "memcached", "--ops", "200", "--faults", "6"]
        ) == 0
        out = capsys.readouterr().out
        assert "detection rate" in out

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            main(["perf", "--app", "redis"])
