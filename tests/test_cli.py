"""Command-line interface tests."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["perf"])
        assert args.app == "memcached"
        assert args.threads == 2
        assert args.cores == 2

    def test_coverage_flags(self):
        args = build_parser().parse_args(
            ["coverage", "--app", "lsmtree", "--faults", "8", "--rbv",
             "--trigger-rate", "0.5"]
        )
        assert args.app == "lsmtree"
        assert args.faults == 8
        assert args.rbv is True
        assert args.trigger_rate == 0.5


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for app in ("memcached", "masstree", "lsmtree", "phoenix"):
            assert app in out

    def test_perf_small(self, capsys):
        assert main(["perf", "--app", "memcached", "--ops", "200"]) == 0
        out = capsys.readouterr().out
        assert "vanilla throughput" in out
        assert "orthrus overhead" in out

    def test_latency_small(self, capsys):
        assert main(["latency", "--app", "memcached", "--ops", "200"]) == 0
        out = capsys.readouterr().out
        assert "orthrus validation latency" in out
        assert "rbv validation latency" in out

    def test_coverage_small(self, capsys):
        assert main(
            ["coverage", "--app", "memcached", "--ops", "200", "--faults", "6"]
        ) == 0
        out = capsys.readouterr().out
        assert "detection rate" in out

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            main(["perf", "--app", "redis"])


class TestObservabilityFlags:
    def test_metrics_and_trace_export(self, tmp_path, capsys):
        metrics = tmp_path / "run.json"
        trace = tmp_path / "run.jsonl"
        assert main([
            "perf", "--app", "memcached", "--ops", "200",
            "--metrics-out", str(metrics), "--trace-out", str(trace),
        ]) == 0
        out = capsys.readouterr().out
        assert "metrics snapshot" in out
        assert "trace events" in out

        from repro.obs import MetricsRegistry, load_metrics_json, read_trace_jsonl

        registry = MetricsRegistry.from_snapshot(load_metrics_json(str(metrics)))
        assert registry.value("orthrus_requests_total") == 200.0
        assert registry.value("run_operations_total") == 200.0
        events = read_trace_jsonl(str(trace))
        assert any(e["kind"] == "closure.run" for e in events)
        assert any(e["kind"] == "validator.validate" for e in events)

    def test_prom_extension_writes_prometheus_text(self, tmp_path, capsys):
        metrics = tmp_path / "run.prom"
        assert main([
            "perf", "--app", "memcached", "--ops", "200",
            "--metrics-out", str(metrics),
        ]) == 0
        text = metrics.read_text()
        assert "# TYPE orthrus_validations_total counter" in text

    def test_obs_summary_renders_saved_snapshot(self, tmp_path, capsys):
        metrics = tmp_path / "run.json"
        main([
            "latency", "--app", "memcached", "--ops", "200",
            "--metrics-out", str(metrics),
        ])
        capsys.readouterr()
        assert main(["obs-summary", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "orthrus_validations_total" in out
        assert main(["obs-summary", str(metrics), "--format", "prom"]) == 0
        assert "# TYPE" in capsys.readouterr().out

    def test_coverage_accepts_metrics_out(self, tmp_path, capsys):
        metrics = tmp_path / "campaign.json"
        assert main([
            "coverage", "--app", "memcached", "--ops", "150", "--faults", "4",
            "--metrics-out", str(metrics),
        ]) == 0
        assert metrics.exists()

    def test_no_flags_no_export(self, capsys):
        assert main(["perf", "--app", "memcached", "--ops", "200"]) == 0
        out = capsys.readouterr().out
        assert "metrics snapshot" not in out

    def test_bad_export_path_fails_before_the_run(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot write"):
            main([
                "perf", "--app", "memcached", "--ops", "200",
                "--metrics-out", str(tmp_path / "missing-dir" / "x.json"),
            ])

    def test_obs_summary_rejects_non_snapshot_json(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"hello": 1}')
        with pytest.raises(SystemExit, match="not an orthrus-metrics/1"):
            main(["obs-summary", str(bad)])

    def test_obs_summary_rejects_missing_and_invalid_files(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read"):
            main(["obs-summary", str(tmp_path / "nope.json")])
        garbage = tmp_path / "garbage.json"
        garbage.write_text("not json")
        with pytest.raises(SystemExit, match="not valid JSON"):
            main(["obs-summary", str(garbage)])
