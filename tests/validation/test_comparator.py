"""Result-comparison semantics."""

from repro.validation.comparator import ComparisonResult, compare_execution, values_equal


class TestValuesEqual:
    def test_equal_primitives(self):
        assert values_equal(1, 1)
        assert values_equal("a", "a")
        assert values_equal(2.5, 2.5)

    def test_bitwise_float_semantics(self):
        assert not values_equal(0.0, -0.0)
        assert values_equal(float("nan"), float("nan"))

    def test_type_sensitivity(self):
        assert not values_equal(1, 1.0)
        assert not values_equal((1,), [1])

    def test_nested(self):
        assert values_equal({"a": [1, 2]}, {"a": [1, 2]})
        assert not values_equal({"a": [1, 2]}, {"a": [1, 3]})

    def test_fallback_to_eq_for_unserializable(self):
        sentinel = object()
        assert values_equal(sentinel, sentinel)
        assert not values_equal(sentinel, object())


def _compare(app_out=(), val_out=(), app_ret=None, val_ret=None, app_del=(), val_del=(), compare=None):
    return compare_execution(
        list(app_out), list(val_out), app_ret, val_ret, list(app_del), list(val_del), compare
    )


class TestCompareExecution:
    def test_identical_passes(self):
        result = _compare(app_out=[1, "x"], val_out=[1, "x"], app_ret=5, val_ret=5)
        assert result.matches

    def test_output_value_divergence(self):
        result = _compare(app_out=[1], val_out=[2])
        assert not result.matches
        assert "output #0" in result.detail

    def test_output_count_divergence(self):
        result = _compare(app_out=[1, 2], val_out=[1])
        assert not result.matches
        assert "count" in result.detail

    def test_retval_divergence(self):
        result = _compare(app_ret=1, val_ret=2)
        assert not result.matches
        assert "return value" in result.detail

    def test_delete_divergence(self):
        result = _compare(app_del=[("ptr", 1)], val_del=[])
        assert not result.matches

    def test_custom_compare_overrides_outputs(self):
        # Tolerant comparison (e.g. unordered container equality).
        result = _compare(
            app_out=[[1, 2]], val_out=[[2, 1]], compare=lambda a, b: sorted(a) == sorted(b)
        )
        assert result.matches

    def test_custom_compare_does_not_cover_retval(self):
        result = _compare(app_ret=[1, 2], val_ret=[2, 1], compare=lambda a, b: True)
        assert not result.matches

    def test_helpers(self):
        assert ComparisonResult.ok().matches
        assert not ComparisonResult.mismatch("x").matches
