"""Watchdog and conservation-ledger tests."""

import pytest

from repro.closures.log import ClosureLog
from repro.errors import ConfigurationError
from repro.obs import Observability
from repro.validation.watchdog import (
    ValidationLedger,
    ValidationWatchdog,
    WatchdogConfig,
)


def make_log(seq):
    return ClosureLog(seq=seq, closure_name=f"op{seq}", caller="t")


class TestWatchdogConfig:
    def test_defaults_valid(self):
        WatchdogConfig().validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"deadline": 0.0},
            {"max_retries": -1},
            {"backoff_base": -1e-6},
            {"backoff_base": 2e-6, "backoff_cap": 1e-6},
            {"offender_threshold": 0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            WatchdogConfig(**kwargs).validate()


class TestWatchdog:
    def test_complete_before_deadline(self):
        wd = ValidationWatchdog(WatchdogConfig(deadline=1.0))
        wd.dispatched(make_log(1), core_id=2, now=0.0)
        assert wd.in_flight == 1
        assert wd.completed(1, now=0.5) is True
        assert wd.in_flight == 0
        assert wd.expired(now=2.0) == []
        assert wd.timeouts_total == 0

    def test_expiry_pops_late_dispatches(self):
        wd = ValidationWatchdog(WatchdogConfig(deadline=1.0))
        wd.dispatched(make_log(1), core_id=2, now=0.0)
        wd.dispatched(make_log(2), core_id=3, now=0.5)
        late = wd.expired(now=1.0)
        assert [d.log.seq for d in late] == [1]
        assert wd.in_flight == 1
        assert wd.timeouts_by_core == {2: 1}

    def test_late_verdict_is_duplicate(self):
        wd = ValidationWatchdog(WatchdogConfig(deadline=1.0))
        wd.dispatched(make_log(1), core_id=2, now=0.0)
        wd.expired(now=5.0)
        # The original core finally answers: discard.
        assert wd.completed(1, now=6.0) is False
        assert wd.duplicates_total == 1

    def test_double_dispatch_rejected(self):
        wd = ValidationWatchdog()
        log = make_log(1)
        wd.dispatched(log, core_id=2, now=0.0)
        with pytest.raises(ConfigurationError):
            wd.dispatched(log, core_id=3, now=0.1)

    def test_backoff_capped_exponential(self):
        config = WatchdogConfig(
            deadline=1.0,
            max_retries=4,
            backoff_base=10e-6,
            backoff_factor=2.0,
            backoff_cap=25e-6,
        )
        wd = ValidationWatchdog(config)
        log = make_log(1)
        delays = []
        now = 0.0
        while True:
            wd.dispatched(log, core_id=2, now=now)
            (dispatch,) = wd.expired(now=now + 2.0)
            delay = wd.plan_redispatch(dispatch, now=now + 2.0)
            if delay is None:
                break
            delays.append(delay)
            now += 2.0 + delay
        # 10us, 20us, then capped at 25us.
        assert delays == pytest.approx([10e-6, 20e-6, 25e-6, 25e-6])
        assert wd.exhausted_total == 1
        assert wd.redispatches_total == 4

    def test_offender_reported_once(self):
        offenders = []
        wd = ValidationWatchdog(
            WatchdogConfig(deadline=1.0, offender_threshold=2),
            on_offender=lambda core, when: offenders.append((core, when)),
        )
        for seq in range(1, 4):
            wd.dispatched(make_log(seq), core_id=7, now=float(seq))
            wd.expired(now=float(seq) + 2.0)
        assert offenders == [(7, 4.0)]

    def test_abandon_returns_stranded(self):
        wd = ValidationWatchdog(WatchdogConfig(deadline=10.0))
        wd.dispatched(make_log(1), core_id=2, now=0.0)
        wd.dispatched(make_log(2), core_id=3, now=0.0)
        stranded = wd.abandon(now=1.0)
        assert sorted(d.log.seq for d in stranded) == [1, 2]
        assert wd.in_flight == 0

    def test_obs_counters(self):
        obs = Observability()
        wd = ValidationWatchdog(WatchdogConfig(deadline=1.0), obs=obs)
        log = make_log(1)
        wd.dispatched(log, core_id=2, now=0.0)
        (dispatch,) = wd.expired(now=2.0)
        assert wd.plan_redispatch(dispatch, now=2.0) is not None
        wd.dispatched(log, core_id=3, now=2.1)
        ((labels, timeout_counter),) = obs.registry.series(
            "orthrus_watchdog_timeouts_total"
        )
        assert labels == {"core": "2"}
        assert timeout_counter.value == 1
        ((_, redispatch_counter),) = obs.registry.series(
            "orthrus_watchdog_redispatches_total"
        )
        assert redispatch_counter.value == 1


class TestValidationLedger:
    def test_conservation_happy_path(self):
        ledger = ValidationLedger()
        for seq in range(4):
            ledger.enqueue(seq)
        ledger.validated(0)
        ledger.skipped(1)
        ledger.dropped(2, "capacity")
        ledger.fallback(3)
        assert ledger.conserved
        summary = ledger.summary()
        assert summary["enqueued"] == 4
        assert summary["validated"] == 1
        assert summary["drop_reasons"] == {"capacity": 1}
        assert summary["outstanding"] == 0

    def test_outstanding_flags_stranded_logs(self):
        ledger = ValidationLedger()
        ledger.enqueue(1)
        ledger.enqueue(2)
        ledger.validated(1)
        assert not ledger.conserved
        assert ledger.outstanding == 1

    def test_redispatch_does_not_double_count(self):
        ledger = ValidationLedger()
        ledger.enqueue(1)
        ledger.enqueue(1)  # re-dispatch of the same seq
        assert ledger.enqueued == 1

    def test_second_terminal_state_rejected(self):
        ledger = ValidationLedger()
        ledger.enqueue(1)
        ledger.validated(1)
        with pytest.raises(ConfigurationError):
            ledger.dropped(1, "capacity")
