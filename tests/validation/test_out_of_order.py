"""Out-of-order validation invariants (§3.3).

The versioned heap is what makes validating logs in *any* order safe:
each log pins the exact input versions its re-execution must see, so a log
validated long after the application has moved on still reproduces the
original memory view.
"""

import random

import pytest

from repro.closures.annotation import closure
from repro.closures.context import ops
from repro.machine.cpu import Machine
from repro.machine.faults import Fault, FaultKind
from repro.machine.instruction import Site
from repro.machine.units import Unit
from repro.runtime.orthrus import OrthrusRuntime


@closure(name="ooo_test.chain")
def chain_update(ptr, factor):
    """Each call depends on the previous call's output (a dependency
    chain — the worst case for in-order replication)."""
    value = ptr.load()
    result = ops().alu.add(ops().alu.mul(value, factor), 1)
    ptr.store(result)
    return result


def make_runtime(fault=None):
    machine = Machine(cores_per_node=4, numa_nodes=1)
    if fault is not None:
        machine.arm(0, fault)
    return OrthrusRuntime(
        machine=machine, app_cores=[0], validation_cores=[1], mode="queued"
    )


def shuffled_drain(runtime, seed):
    """Validate all pending logs in a random order."""
    logs = runtime.queues.drain()
    random.Random(seed).shuffle(logs)
    for log in logs:
        core = runtime.scheduler.validation_core_for(log.core_id)
        runtime.validator.validate(log, core)


@pytest.mark.parametrize("seed", [1, 7, 42])
def test_any_validation_order_passes_clean_chains(seed):
    runtime = make_runtime()
    with runtime:
        ptr = runtime.new(1)
        for factor in (2, 3, 2, 5, 7, 2, 3, 11):
            chain_update(ptr, factor)
        shuffled_drain(runtime, seed)
    assert runtime.detections == 0
    assert runtime.validator.validated_count == 8


@pytest.mark.parametrize("seed", [1, 7, 42])
def test_any_validation_order_detects_corruption(seed):
    runtime = make_runtime(Fault(unit=Unit.ALU, kind=FaultKind.BITFLIP, bit=9,
                                 site=Site("ooo_test.chain", "mul", 0)))
    with runtime:
        ptr = runtime.new(1)
        for factor in (2, 3, 2, 5, 7, 2, 3, 11):
            chain_update(ptr, factor)
        shuffled_drain(runtime, seed)
    # Every execution corrupts and every log pins its own inputs, so the
    # detection count is independent of validation order.
    assert runtime.detections == 8


def test_late_validation_sees_original_snapshot():
    """Validating after the object advanced 100 versions still compares
    against the pinned input, not the current value."""
    runtime = make_runtime()
    with runtime:
        ptr = runtime.new(1)
        chain_update(ptr, 2)
        first_log = runtime.queues.drain()[0]
        for factor in range(1, 101):
            chain_update(ptr, factor)
        outcome = runtime.validator.validate(
            first_log, runtime.scheduler.validation_core_for(first_log.core_id)
        )
    assert outcome.passed


def test_validation_order_does_not_change_application_state():
    results = []
    for seed in (3, 9):
        runtime = make_runtime()
        with runtime:
            ptr = runtime.new(1)
            for factor in (2, 3, 5):
                chain_update(ptr, factor)
            shuffled_drain(runtime, seed)
            results.append(ptr.load())
    assert results[0] == results[1]
