"""Pointer canonicalization in output comparison (§3.3).

APP and VAL allocate the "same" logical object at different raw ids; the
comparator must map both sides through allocation order before a bitwise
comparison means anything.
"""

from repro.memory.heap import VersionedHeap
from repro.memory.pointer import OrthrusPtr
from repro.validation.comparator import canonicalize_ptrs, values_equal


def canon_by(mapping):
    return lambda obj_id: mapping.get(obj_id, ("ptr", obj_id))


class TestCanonicalizePtrs:
    def test_plain_values_untouched(self):
        assert canonicalize_ptrs(42, canon_by({})) == 42
        assert canonicalize_ptrs("text", canon_by({})) == "text"
        assert canonicalize_ptrs(None, canon_by({})) is None

    def test_top_level_ptr_mapped(self):
        heap = VersionedHeap()
        ptr = OrthrusPtr(heap, 7)
        out = canonicalize_ptrs(ptr, canon_by({7: ("ptr:new", 0)}))
        assert out == ("ptr:new", 0)

    def test_unmapped_ptr_keeps_shared_identity(self):
        heap = VersionedHeap()
        ptr = OrthrusPtr(heap, 7)
        assert canonicalize_ptrs(ptr, canon_by({})) == ("ptr", 7)

    def test_nested_containers(self):
        heap = VersionedHeap()
        a, b = OrthrusPtr(heap, 1), OrthrusPtr(heap, 2)
        value = {"chain": (a, [b, 3]), "n": 9}
        out = canonicalize_ptrs(
            value, canon_by({1: ("ptr:new", 0), 2: ("ptr:new", 1)})
        )
        assert out == {"chain": (("ptr:new", 0), [("ptr:new", 1), 3]), "n": 9}

    def test_app_val_equivalence_end_to_end(self):
        # APP stored a bucket (item_ptr,) with item obj 42 (its 0th alloc);
        # VAL stored (shadow_ptr,) with shadow id -1 (also its 0th alloc).
        heap = VersionedHeap()
        app_bucket = (OrthrusPtr(heap, 42),)
        val_bucket = (OrthrusPtr(heap, -1),)
        app_canon = canonicalize_ptrs(app_bucket, canon_by({42: ("ptr:new", 0)}))
        val_canon = canonicalize_ptrs(val_bucket, canon_by({-1: ("ptr:new", 0)}))
        assert values_equal(app_canon, val_canon)

    def test_divergent_allocation_order_detected(self):
        heap = VersionedHeap()
        app = canonicalize_ptrs(
            (OrthrusPtr(heap, 42),), canon_by({42: ("ptr:new", 0)})
        )
        val = canonicalize_ptrs(
            (OrthrusPtr(heap, -1),), canon_by({-1: ("ptr:new", 1)})
        )
        assert not values_equal(app, val)
