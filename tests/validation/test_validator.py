"""Validator re-execution and mismatch detection."""

import pytest

from repro.closures.annotation import closure
from repro.closures.context import ops
from repro.closures.syscalls import sys_random
from repro.detection import DetectionEvent
from repro.errors import ConfigurationError
from repro.machine.cpu import Machine
from repro.machine.faults import Fault, FaultKind
from repro.machine.units import Unit
from repro.runtime.orthrus import OrthrusRuntime


@closure(name="validator_test.double")
def double(ptr):
    value = ptr.load()
    result = ops().alu.mul(value, 2)
    ptr.store(result)
    return result


@closure(name="validator_test.fp_scale")
def fp_scale(ptr, factor):
    value = ptr.load()
    result = ops().fpu.fmul(value, factor)
    ptr.store(result)
    return result


@closure(name="validator_test.randomized")
def randomized(ptr):
    noise = sys_random()
    ptr.store(ops().alu.add(ptr.load(), int(noise * 100)))


@closure(name="validator_test.allocating")
def allocating(n):
    from repro.memory.pointer import orthrus_new

    ptrs = [orthrus_new(i * 10) for i in range(n)]
    return ptrs[-1]


def make_runtime(fault=None, fault_core=0, **kwargs):
    machine = Machine(cores_per_node=4, numa_nodes=1)
    if fault is not None:
        machine.arm(fault_core, fault)
    return OrthrusRuntime(machine=machine, app_cores=[0], validation_cores=[1], **kwargs)


class TestCleanValidation:
    def test_clean_run_passes(self):
        runtime = make_runtime()
        with runtime:
            ptr = runtime.new(21)
            assert double(ptr) == 42
        assert runtime.detections == 0
        assert runtime.validations == 1

    def test_syscalls_replayed_not_reexecuted(self):
        runtime = make_runtime()
        with runtime:
            ptr = runtime.new(0)
            randomized(ptr)
        # Even though random() would differ on re-execution, replay makes
        # validation agree.
        assert runtime.detections == 0

    def test_allocations_compared_by_position(self):
        runtime = make_runtime()
        with runtime:
            allocating(3)
        assert runtime.detections == 0

    def test_many_clean_closures(self):
        runtime = make_runtime()
        with runtime:
            ptr = runtime.new(1)
            for _ in range(20):
                double(ptr)
        assert runtime.detections == 0
        assert runtime.validations == 20


class TestFaultyValidation:
    def test_alu_fault_detected(self):
        runtime = make_runtime(Fault(unit=Unit.ALU, kind=FaultKind.BITFLIP, bit=4))
        with runtime:
            ptr = runtime.new(3)
            double(ptr)
        assert runtime.detections == 1
        assert runtime.report.first.kind == "mismatch"

    def test_fpu_fault_detected(self):
        runtime = make_runtime(Fault(unit=Unit.FPU, kind=FaultKind.BITFLIP, bit=51))
        with runtime:
            ptr = runtime.new(1.5)
            fp_scale(ptr, 3.0)
        assert runtime.detections == 1

    def test_fault_on_validation_core_also_detected(self):
        # Divergence is symmetric: a mercurial validation core disagrees
        # with a healthy APP core just the same.
        runtime = make_runtime(
            Fault(unit=Unit.ALU, kind=FaultKind.BITFLIP, bit=4), fault_core=1
        )
        with runtime:
            ptr = runtime.new(3)
            double(ptr)
        assert runtime.detections == 1

    def test_fault_in_unused_unit_is_silent(self):
        runtime = make_runtime(Fault(unit=Unit.SIMD, kind=FaultKind.BITFLIP))
        with runtime:
            ptr = runtime.new(3)
            double(ptr)
        assert runtime.detections == 0

    def test_corrupted_value_visible_in_heap_until_detected(self):
        runtime = make_runtime(Fault(unit=Unit.ALU, kind=FaultKind.BITFLIP, bit=4))
        with runtime:
            ptr = runtime.new(3)
            double(ptr)
            assert ptr.load() != 6  # SDC materialized in user data
        assert runtime.detections == 1


class TestValidatorInvariants:
    def test_validation_never_on_app_core(self):
        runtime = make_runtime()
        with pytest.raises(ConfigurationError):
            OrthrusRuntime(
                machine=runtime.machine, app_cores=[0], validation_cores=[0]
            )

    def test_validator_rejects_same_core(self):
        from repro.closures.log import ClosureLog

        runtime = make_runtime()
        log = ClosureLog(seq=1, closure_name="x", caller="t", core_id=1, func=lambda: None)
        with pytest.raises(ConfigurationError):
            runtime.validator.validate(log, runtime.machine.core(1))

    def test_validation_does_not_perturb_shared_heap(self):
        runtime = make_runtime()
        with runtime:
            ptr = runtime.new(21)
            double(ptr)
            versions_after_app = runtime.heap.versions_created
        assert runtime.heap.versions_created == versions_after_app

    def test_detection_event_carries_closure_name(self):
        runtime = make_runtime(Fault(unit=Unit.ALU, kind=FaultKind.BITFLIP, bit=4))
        with runtime:
            double(runtime.new(3))
        assert runtime.report.first.closure == "validator_test.double"


class TestQueuedMode:
    def test_logs_queue_until_pumped(self):
        runtime = make_runtime(mode="queued")
        with runtime:
            ptr = runtime.new(21)
            double(ptr)
            assert runtime.queues.pending == 1
            assert runtime.validations == 0
            runtime.pump()
        assert runtime.validations == 1

    def test_out_of_order_validation_is_consistent(self):
        # App performs dependent updates; validation happens later, out of
        # band, and still passes thanks to version pinning.
        runtime = make_runtime(mode="queued")
        with runtime:
            ptr = runtime.new(1)
            for _ in range(5):
                double(ptr)
            assert ptr.load() == 32
            runtime.drain()
        assert runtime.detections == 0
        assert runtime.validations == 5

    def test_faulty_queued_run_detected_at_pump(self):
        runtime = make_runtime(
            Fault(unit=Unit.ALU, kind=FaultKind.BITFLIP, bit=4), mode="queued"
        )
        with runtime:
            double(runtime.new(3))
            assert runtime.detections == 0
            runtime.drain()
        assert runtime.detections == 1

    def test_validation_latency_recorded(self):
        runtime = make_runtime(mode="queued")
        with runtime:
            double(runtime.new(3))
            runtime.drain()
        outcome = runtime.outcomes[0]
        assert outcome.latency >= 0
        assert outcome.log.validated_time is not None
