"""Validation queue and work-stealing tests."""

import pytest

from repro.closures.log import ClosureLog
from repro.errors import ConfigurationError
from repro.validation.queues import LogQueue, QueueSet


def make_log(seq):
    return ClosureLog(seq=seq, closure_name=f"op{seq}", caller="t")


class TestLogQueue:
    def test_fifo_order(self):
        queue = LogQueue(0)
        queue.push(make_log(1), now=1.0)
        queue.push(make_log(2), now=2.0)
        assert queue.pop().seq == 1
        assert queue.pop().seq == 2
        assert queue.pop() is None

    def test_push_stamps_enqueue_time(self):
        queue = LogQueue(0)
        log = make_log(1)
        queue.push(log, now=42.0)
        assert log.enqueue_time == 42.0

    def test_steal_takes_newest(self):
        queue = LogQueue(0)
        queue.push(make_log(1), 1.0)
        queue.push(make_log(2), 2.0)
        assert queue.steal().seq == 2
        assert queue.steal().seq == 1
        assert queue.steal() is None

    def test_oldest_enqueue_time(self):
        queue = LogQueue(0)
        assert queue.oldest_enqueue_time is None
        queue.push(make_log(1), 5.0)
        queue.push(make_log(2), 9.0)
        assert queue.oldest_enqueue_time == 5.0


class TestQueueSet:
    def test_requires_one_queue(self):
        with pytest.raises(ConfigurationError):
            QueueSet(0)

    def test_round_robin_placement(self):
        qs = QueueSet(2)
        for seq in range(4):
            qs.push(make_log(seq), now=float(seq))
        assert len(qs.queues[0]) == 2
        assert len(qs.queues[1]) == 2

    def test_pop_own_queue_first(self):
        qs = QueueSet(2)
        qs.push(make_log(1), 1.0)  # lands on queue 0
        qs.push(make_log(2), 2.0)  # lands on queue 1
        assert qs.pop(0).seq == 1

    def test_steal_from_longest(self):
        qs = QueueSet(3)
        # Load queue 0 heavily by round-robin over 3 queues.
        for seq in range(7):
            qs.push(make_log(seq), float(seq))
        # Drain queue 2's own log, then it must steal.
        qs.pop(2)
        stolen = qs.pop(2)
        assert stolen is not None

    def test_no_steal_when_disallowed(self):
        qs = QueueSet(2)
        qs.push(make_log(1), 1.0)  # queue 0
        assert qs.pop(1, allow_steal=False) is None

    def test_queue_delay(self):
        qs = QueueSet(2)
        assert qs.queue_delay(now=10.0) == 0.0
        qs.push(make_log(1), now=4.0)
        assert qs.queue_delay(now=10.0) == 6.0

    def test_pending_counts_all(self):
        qs = QueueSet(2)
        for seq in range(5):
            qs.push(make_log(seq), float(seq))
        assert qs.pending == 5

    def test_drain_returns_oldest_first(self):
        qs = QueueSet(2)
        for seq in range(5):
            qs.push(make_log(seq), float(seq))
        drained = qs.drain()
        assert [log.seq for log in drained] == [0, 1, 2, 3, 4]
        assert qs.pending == 0
