"""Validation queue, bounding, and work-stealing tests."""

import pytest

from repro.closures.log import ClosureLog
from repro.errors import ConfigurationError
from repro.obs import Observability
from repro.validation.queues import (
    OVERFLOW_BLOCK,
    OVERFLOW_DROP_OLDEST,
    OVERFLOW_REJECT,
    LogQueue,
    QueueSet,
)


def make_log(seq):
    return ClosureLog(seq=seq, closure_name=f"op{seq}", caller="t")


class TestLogQueue:
    def test_fifo_order(self):
        queue = LogQueue(0)
        queue.push(make_log(1), now=1.0)
        queue.push(make_log(2), now=2.0)
        assert queue.pop().seq == 1
        assert queue.pop().seq == 2
        assert queue.pop() is None

    def test_push_stamps_enqueue_time(self):
        queue = LogQueue(0)
        log = make_log(1)
        queue.push(log, now=42.0)
        assert log.enqueue_time == 42.0

    def test_push_accepted_when_unbounded(self):
        queue = LogQueue(0)
        outcome = queue.push(make_log(1), 1.0)
        assert outcome.accepted
        assert outcome.dropped is None
        assert outcome.queue is queue

    def test_steal_takes_oldest(self):
        # The stranded log is the *oldest* one: stealing must take the
        # head, otherwise the victim's lag signal never improves.
        queue = LogQueue(0)
        queue.push(make_log(1), 1.0)
        queue.push(make_log(2), 2.0)
        assert queue.steal().seq == 1
        assert queue.steal().seq == 2
        assert queue.steal() is None

    def test_oldest_enqueue_time(self):
        queue = LogQueue(0)
        assert queue.oldest_enqueue_time is None
        queue.push(make_log(1), 5.0)
        queue.push(make_log(2), 9.0)
        assert queue.oldest_enqueue_time == 5.0

    def test_steal_advances_oldest_enqueue_time(self):
        """Regression: tail-stealing left oldest_enqueue_time frozen while
        the queue drained, so the sampler's lag signal stayed stale."""
        queue = LogQueue(0)
        for seq in range(4):
            queue.push(make_log(seq), float(seq))
        ages = [queue.oldest_enqueue_time]
        while queue.steal() is not None:
            ages.append(queue.oldest_enqueue_time)
        # Each steal removes the oldest log, so the reported age advances
        # monotonically until the queue is empty.
        assert ages == [0.0, 1.0, 2.0, 3.0, None]

    def test_invalid_capacity_and_policy(self):
        with pytest.raises(ConfigurationError):
            LogQueue(0, capacity=0)
        with pytest.raises(ConfigurationError):
            LogQueue(0, policy="explode")


class TestBoundedLogQueue:
    def test_reject_drops_incoming(self):
        queue = LogQueue(0, capacity=2, policy=OVERFLOW_REJECT)
        assert queue.push(make_log(1), 1.0).accepted
        assert queue.push(make_log(2), 2.0).accepted
        outcome = queue.push(make_log(3), 3.0)
        assert not outcome.accepted
        assert outcome.dropped.seq == 3
        assert outcome.reason == "capacity"
        assert queue.drops == {"capacity": 1}
        assert [queue.pop().seq for _ in range(2)] == [1, 2]

    def test_drop_oldest_evicts_head(self):
        queue = LogQueue(0, capacity=2, policy=OVERFLOW_DROP_OLDEST)
        queue.push(make_log(1), 1.0)
        queue.push(make_log(2), 2.0)
        outcome = queue.push(make_log(3), 3.0)
        assert outcome.accepted
        assert outcome.dropped.seq == 1
        assert outcome.reason == "evicted-oldest"
        assert [queue.pop().seq for _ in range(2)] == [2, 3]

    def test_block_producer_signals_would_block(self):
        queue = LogQueue(0, capacity=1, policy=OVERFLOW_BLOCK)
        assert queue.push(make_log(1), 1.0).accepted
        outcome = queue.push(make_log(2), 2.0)
        assert outcome.would_block
        assert outcome.dropped is None
        assert queue.drops == {}
        # Space frees up: the retry succeeds.
        queue.pop()
        assert queue.push(make_log(2), 3.0).accepted

    def test_push_after_close_is_shutdown_drop(self):
        queue = LogQueue(0, capacity=4)
        queue.push(make_log(1), 1.0)
        queue.close()
        outcome = queue.push(make_log(2), 2.0)
        assert not outcome.accepted
        assert outcome.reason == "shutdown"
        assert queue.drops == {"shutdown": 1}
        # Pending logs stay poppable after close.
        assert queue.pop().seq == 1


class TestQueueSet:
    def test_requires_one_queue(self):
        with pytest.raises(ConfigurationError):
            QueueSet(0)

    def test_round_robin_placement(self):
        qs = QueueSet(2)
        for seq in range(4):
            qs.push(make_log(seq), now=float(seq))
        assert len(qs.queues[0]) == 2
        assert len(qs.queues[1]) == 2

    def test_pop_own_queue_first(self):
        qs = QueueSet(2)
        qs.push(make_log(1), 1.0)  # lands on queue 0
        qs.push(make_log(2), 2.0)  # lands on queue 1
        assert qs.pop(0).seq == 1

    def test_steal_from_longest(self):
        qs = QueueSet(3)
        # Load queue 0 heavily by round-robin over 3 queues.
        for seq in range(7):
            qs.push(make_log(seq), float(seq))
        # Drain queue 2's own log, then it must steal.
        qs.pop(2)
        stolen = qs.pop(2)
        assert stolen is not None

    def test_no_steal_when_disallowed(self):
        qs = QueueSet(2)
        qs.push(make_log(1), 1.0)  # queue 0
        assert qs.pop(1, allow_steal=False) is None

    def test_queue_delay(self):
        qs = QueueSet(2)
        assert qs.queue_delay(now=10.0) == 0.0
        qs.push(make_log(1), now=4.0)
        assert qs.queue_delay(now=10.0) == 6.0

    def test_pending_counts_all(self):
        qs = QueueSet(2)
        for seq in range(5):
            qs.push(make_log(seq), float(seq))
        assert qs.pending == 5

    def test_drain_returns_oldest_first(self):
        qs = QueueSet(2)
        for seq in range(5):
            qs.push(make_log(seq), float(seq))
        drained = qs.drain()
        assert [log.seq for log in drained] == [0, 1, 2, 3, 4]
        assert qs.pending == 0


class TestQueueSetStealEdgeCases:
    def test_steal_from_empty_set(self):
        qs = QueueSet(3)
        assert qs.pop(0) is None
        assert qs.pop(2, allow_steal=True) is None

    def test_single_queue_cannot_steal_from_itself(self):
        qs = QueueSet(1)
        assert qs.pop(0) is None

    def test_round_robin_cursor_wraps_when_all_empty(self):
        qs = QueueSet(2)
        # Drain attempts on empty queues must not advance the push cursor:
        # the next pushes still alternate 0, 1, 0, 1 from wherever the
        # cursor was, and wrap cleanly past the end.
        for _ in range(5):
            assert qs.pop(0) is None
            assert qs.pop(1) is None
        for seq in range(4):
            qs.push(make_log(seq), float(seq))
        assert [log.seq for log in qs.queues[0]._logs] == [0, 2]
        assert [log.seq for log in qs.queues[1]._logs] == [1, 3]

    def test_steal_rescues_backlogged_peer_lag(self):
        """Regression for the stale-lag bug: with a thief repeatedly
        stealing, the set-wide queue_delay must shrink (the AIMD sampler
        reads it; a frozen signal collapses the sampling rate)."""
        qs = QueueSet(2)
        for seq in range(6):
            qs.push(make_log(seq), queue_id=0, now=float(seq))
        delays = []
        now = 10.0
        while qs.pending:
            assert qs.pop(1) is not None  # queue 1 empty: always a steal
            delays.append(qs.queue_delay(now))
        assert delays == sorted(delays, reverse=True)
        assert delays[-1] == 0.0

    def test_push_after_shutdown_accounts_drop(self):
        qs = QueueSet(2, capacity=4)
        qs.push(make_log(1), 1.0)
        qs.shutdown()
        outcome = qs.push(make_log(2), 2.0)
        assert not outcome.accepted
        assert outcome.reason == "shutdown"
        assert qs.drops == {"shutdown": 1}
        assert qs.dropped_total == 1
        # The pending log is still drainable.
        assert [log.seq for log in qs.drain()] == [1]


class TestBoundedQueueSet:
    def test_placement_skips_full_queues(self):
        qs = QueueSet(2, capacity=1, policy=OVERFLOW_REJECT)
        assert qs.push(make_log(1), 1.0).accepted  # queue 0
        # Round-robin says queue 1, which has room.
        assert qs.push(make_log(2), 2.0).accepted
        # Cursor points at queue 0 (full) — placement must fall through to
        # any open queue before applying the overflow policy... none has
        # room here, so the reject fires.
        outcome = qs.push(make_log(3), 3.0)
        assert not outcome.accepted
        assert outcome.reason == "capacity"

    def test_policy_only_fires_under_global_overload(self):
        qs = QueueSet(2, capacity=1, policy=OVERFLOW_DROP_OLDEST)
        qs.push(make_log(1), 1.0)   # queue 0 now full
        qs.pop(1, allow_steal=False)  # queue 1 stays empty
        # Cursor targets queue 1 next; queue 0 full is irrelevant.
        outcome = qs.push(make_log(2), 2.0)
        assert outcome.accepted and outcome.dropped is None
        assert qs.dropped_total == 0

    def test_utilization(self):
        qs = QueueSet(2, capacity=2)
        assert qs.utilization == 0.0
        qs.push(make_log(1), 1.0)
        qs.push(make_log(2), 2.0)
        assert qs.utilization == 0.5
        unbounded = QueueSet(2)
        unbounded.push(make_log(1), 1.0)
        assert unbounded.utilization == 0.0

    def test_drop_metrics_surface_through_obs(self):
        obs = Observability()
        qs = QueueSet(1, capacity=1, policy=OVERFLOW_REJECT, obs=obs)
        qs.push(make_log(1), 1.0)
        qs.push(make_log(2), 2.0)
        drops = obs.registry.series("orthrus_queue_drops_total")
        assert len(drops) == 1
        labels, counter = drops[0]
        assert labels == {"queue": "0", "reason": "capacity"}
        assert counter.value == 1
