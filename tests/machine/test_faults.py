"""Fault-model corruption semantics."""

import math
import struct

import pytest

from repro.machine.faults import Fault, FaultKind, corrupt_value
from repro.machine.instruction import Site
from repro.machine.units import Unit


class TestIntCorruption:
    def test_bitflip_flips_the_requested_bit(self):
        assert corrupt_value(0, FaultKind.BITFLIP, 3) == 8
        assert corrupt_value(8, FaultKind.BITFLIP, 3) == 0

    def test_bitflip_is_an_involution(self):
        for value in (0, 1, 12345, 2**40 + 17):
            once = corrupt_value(value, FaultKind.BITFLIP, 7)
            assert corrupt_value(once, FaultKind.BITFLIP, 7) == value

    def test_stuckat0_clears_bit(self):
        assert corrupt_value(0b1111, FaultKind.STUCKAT0, 1) == 0b1101

    def test_stuckat1_sets_bit(self):
        assert corrupt_value(0b0000, FaultKind.STUCKAT1, 2) == 0b0100

    def test_stuckat_is_idempotent(self):
        once = corrupt_value(0xABCD, FaultKind.STUCKAT1, 5)
        assert corrupt_value(once, FaultKind.STUCKAT1, 5) == once

    def test_bit_index_wraps_at_64(self):
        assert corrupt_value(0, FaultKind.BITFLIP, 64) == 1

    def test_high_bit_flip_produces_negative_two_complement(self):
        corrupted = corrupt_value(0, FaultKind.BITFLIP, 63)
        assert corrupted == -(1 << 63)

    def test_negative_value_roundtrip(self):
        corrupted = corrupt_value(-1, FaultKind.BITFLIP, 0)
        assert corrupted == -2


class TestFloatCorruption:
    def test_bitflip_changes_float(self):
        corrupted = corrupt_value(1.0, FaultKind.BITFLIP, 52)
        assert corrupted != 1.0

    def test_bitflip_is_involution_on_floats(self):
        once = corrupt_value(3.14159, FaultKind.BITFLIP, 13)
        assert corrupt_value(once, FaultKind.BITFLIP, 13) == 3.14159

    def test_sign_bit_flip_negates(self):
        assert corrupt_value(2.5, FaultKind.BITFLIP, 63) == -2.5

    def test_exponent_flip_can_produce_inf_or_large(self):
        (bits,) = struct.unpack("<Q", struct.pack("<d", 1.0))
        corrupted = corrupt_value(1.0, FaultKind.STUCKAT1, 62)
        assert corrupted != 1.0
        assert math.isfinite(corrupted) or math.isinf(corrupted)


class TestBoolCorruption:
    def test_bitflip_inverts(self):
        assert corrupt_value(True, FaultKind.BITFLIP, 0) is False
        assert corrupt_value(False, FaultKind.BITFLIP, 0) is True

    def test_stuckat_forces_value(self):
        assert corrupt_value(True, FaultKind.STUCKAT0, 0) is False
        assert corrupt_value(False, FaultKind.STUCKAT1, 0) is True


class TestBytesCorruption:
    def test_one_bit_changes_one_byte(self):
        data = b"hello world"
        corrupted = corrupt_value(data, FaultKind.BITFLIP, 8)
        assert corrupted != data
        diffs = [i for i, (a, b) in enumerate(zip(data, corrupted)) if a != b]
        assert len(diffs) == 1

    def test_empty_bytes_unchanged(self):
        assert corrupt_value(b"", FaultKind.BITFLIP, 3) == b""


class TestVectorCorruption:
    def test_single_lane_corrupted(self):
        vector = (1.0, 2.0, 3.0, 4.0)
        corrupted = corrupt_value(vector, FaultKind.BITFLIP, 1)
        diffs = [i for i in range(4) if vector[i] != corrupted[i]]
        assert len(diffs) == 1

    def test_preserves_sequence_type(self):
        assert isinstance(corrupt_value([1, 2], FaultKind.BITFLIP, 0), list)
        assert isinstance(corrupt_value((1, 2), FaultKind.BITFLIP, 0), tuple)

    def test_empty_vector_unchanged(self):
        assert corrupt_value((), FaultKind.BITFLIP, 0) == ()


class TestFaultMatching:
    def test_unit_must_match(self):
        fault = Fault(unit=Unit.FPU, kind=FaultKind.BITFLIP)
        assert fault.matches(Unit.FPU, Site("f", "fadd", 0))
        assert not fault.matches(Unit.ALU, Site("f", "add", 0))

    def test_sitewide_fault_matches_any_site(self):
        fault = Fault(unit=Unit.ALU, kind=FaultKind.BITFLIP, site=None)
        assert fault.matches(Unit.ALU, Site("f", "add", 0))
        assert fault.matches(Unit.ALU, Site("g", "mul", 7))

    def test_pinned_fault_matches_only_its_site(self):
        site = Site("f", "add", 2)
        fault = Fault(unit=Unit.ALU, kind=FaultKind.BITFLIP, site=site)
        assert fault.matches(Unit.ALU, site)
        assert not fault.matches(Unit.ALU, Site("f", "add", 3))


def test_nop_has_no_value_semantics():
    with pytest.raises(ValueError):
        corrupt_value(1, FaultKind.NOP, 0)


def test_unsupported_type_raises():
    with pytest.raises(TypeError):
        corrupt_value(object(), FaultKind.BITFLIP, 0)
