"""Core execution, tracing, and mercurial behaviour."""

import pytest

from repro.machine.core import AtomicCell, Core
from repro.machine.faults import Fault, FaultKind
from repro.machine.instruction import Site
from repro.machine.units import Unit


@pytest.fixture
def core():
    return Core(core_id=0)


class TestHealthyOps:
    def test_alu_arithmetic(self, core):
        core.begin("f")
        assert core.alu.add(2, 3) == 5
        assert core.alu.sub(7, 3) == 4
        assert core.alu.mul(4, 5) == 20
        assert core.alu.div(17, 5) == 3
        assert core.alu.mod(17, 5) == 2
        core.end()

    def test_alu_logic(self, core):
        core.begin("f")
        assert core.alu.xor(0b1100, 0b1010) == 0b0110
        assert core.alu.and_(0b1100, 0b1010) == 0b1000
        assert core.alu.or_(0b1100, 0b1010) == 0b1110
        assert core.alu.shl(1, 4) == 16
        assert core.alu.shr(16, 2) == 4
        core.end()

    def test_alu_compare(self, core):
        core.begin("f")
        assert core.alu.lt(1, 2) is True
        assert core.alu.lt(2, 1) is False
        assert core.alu.le(2, 2) is True
        assert core.alu.eq("a", "a") is True
        core.end()

    def test_fpu(self, core):
        core.begin("f")
        assert core.fpu.fadd(1.5, 2.5) == 4.0
        assert core.fpu.fmul(3.0, 2.0) == 6.0
        assert core.fpu.fdiv(1.0, 4.0) == 0.25
        core.end()

    def test_simd(self, core):
        core.begin("f")
        assert core.simd.vadd((1, 2), (3, 4)) == (4, 6)
        assert core.simd.vmul((2, 3), (4, 5)) == (8, 15)
        assert core.simd.vdot((1, 2), (3, 4)) == 11.0
        assert core.simd.vsum((1, 2, 3)) == 6.0
        core.end()

    def test_cache_atomics(self, core):
        cell = AtomicCell(10)
        core.begin("f")
        assert core.cache.atomic_read(cell) == 10
        core.cache.atomic_write(cell, 20)
        assert cell.value == 20
        assert core.cache.atomic_add(cell, 5) == 25
        assert core.cache.cas(cell, 25, 30) is True
        assert cell.value == 30
        assert core.cache.cas(cell, 999, 0) is False
        assert cell.value == 30
        core.end()

    def test_hash64_deterministic_and_spread(self, core):
        core.begin("f")
        h1 = core.alu.hash64("key-1")
        core.end()
        core.begin("f")
        h2 = core.alu.hash64("key-1")
        h3 = core.alu.hash64("key-2")
        core.end()
        assert h1 == h2
        assert h1 != h3
        assert 0 <= h1 < 2**64

    def test_copy_is_identity_when_healthy(self, core):
        core.begin("f")
        assert core.alu.copy(b"payload") == b"payload"
        core.end()

    def test_division_by_zero_raises(self, core):
        core.begin("f")
        with pytest.raises(ZeroDivisionError):
            core.alu.div(1, 0)
        core.end()


class TestTracing:
    def test_trace_counts_units(self, core):
        trace = core.begin("f")
        core.alu.add(1, 2)
        core.alu.add(3, 4)
        core.fpu.fadd(1.0, 2.0)
        core.simd.vadd((1,), (2,))
        core.end()
        assert trace.count(Unit.ALU) == 2
        assert trace.count(Unit.FPU) == 1
        assert trace.count(Unit.SIMD) == 1
        assert trace.count(Unit.CACHE) == 0

    def test_trace_cycles_accumulate(self, core):
        trace = core.begin("f")
        core.alu.add(1, 2)
        core.fpu.fadd(1.0, 2.0)
        core.end()
        assert trace.cycles == 1 + 4

    def test_site_recording(self, core):
        from repro.machine.instruction import Trace

        trace = core.begin("f", Trace(record_sites=True))
        core.alu.add(1, 2)
        core.alu.add(3, 4)
        core.alu.mul(2, 2)
        core.end()
        assert Site("f", "add", 0) in trace.sites
        assert Site("f", "add", 1) in trace.sites
        assert Site("f", "mul", 0) in trace.sites

    def test_occurrence_counters_reset_per_execution(self, core):
        from repro.machine.instruction import Trace

        trace1 = core.begin("f", Trace(record_sites=True))
        core.alu.add(1, 2)
        core.end()
        trace2 = core.begin("f", Trace(record_sites=True))
        core.alu.add(1, 2)
        core.end()
        assert trace1.sites == trace2.sites

    def test_total_cycles_accumulate_across_executions(self, core):
        core.begin("f")
        core.alu.add(1, 2)
        core.end()
        before = core.total_cycles
        core.begin("g")
        core.alu.add(1, 2)
        core.end()
        assert core.total_cycles == before + 1


class TestMercurialBehaviour:
    def test_sitewide_fault_corrupts_every_matching_op(self):
        core = Core(0)
        core.arm(Fault(unit=Unit.ALU, kind=FaultKind.BITFLIP, bit=0))
        core.begin("f")
        assert core.alu.add(2, 2) == 5  # 4 ^ 1
        core.end()

    def test_fault_is_reproducible(self):
        core = Core(0)
        core.arm(Fault(unit=Unit.ALU, kind=FaultKind.BITFLIP, bit=2))
        results = set()
        for _ in range(5):
            core.begin("f")
            results.add(core.alu.add(10, 10))
            core.end()
        assert results == {20 ^ 4}  # every execution corrupted identically

    def test_site_pinned_fault_hits_only_that_occurrence(self):
        core = Core(0)
        site = Site("f", "add", 1)
        core.arm(Fault(unit=Unit.ALU, kind=FaultKind.BITFLIP, site=site, bit=0))
        core.begin("f")
        first = core.alu.add(4, 4)
        second = core.alu.add(4, 4)
        core.end()
        assert first == 8
        assert second == 9

    def test_fault_in_other_unit_does_not_fire(self):
        core = Core(0)
        core.arm(Fault(unit=Unit.FPU, kind=FaultKind.BITFLIP, bit=0))
        core.begin("f")
        assert core.alu.add(2, 2) == 4
        core.end()

    def test_nop_returns_first_operand(self):
        core = Core(0)
        core.arm(Fault(unit=Unit.ALU, kind=FaultKind.NOP))
        core.begin("f")
        assert core.alu.add(7, 3) == 7
        core.end()

    def test_trigger_rate_zero_never_fires(self):
        core = Core(0, seed=42)
        core.arm(Fault(unit=Unit.ALU, kind=FaultKind.BITFLIP, bit=0, trigger_rate=0.0))
        core.begin("f")
        assert all(core.alu.add(2, 2) == 4 for _ in range(20))
        core.end()

    def test_trigger_rate_partial_fires_sometimes(self):
        core = Core(0, seed=7)
        core.arm(Fault(unit=Unit.ALU, kind=FaultKind.BITFLIP, bit=0, trigger_rate=0.5))
        core.begin("f")
        results = [core.alu.add(2, 2) for _ in range(100)]
        core.end()
        assert 4 in results and 5 in results

    def test_disarm_restores_health(self):
        core = Core(0)
        core.arm(Fault(unit=Unit.ALU, kind=FaultKind.BITFLIP, bit=0))
        core.disarm()
        assert not core.is_mercurial
        core.begin("f")
        assert core.alu.add(2, 2) == 4
        core.end()

    def test_branch_condition_corruption(self):
        core = Core(0)
        core.arm(Fault(unit=Unit.ALU, kind=FaultKind.BITFLIP, bit=0))
        core.begin("f")
        assert core.alu.lt(1, 2) is False  # inverted by the fault
        core.end()

    def test_cache_fault_corrupts_atomics(self):
        core = Core(0)
        core.arm(Fault(unit=Unit.CACHE, kind=FaultKind.BITFLIP, bit=0))
        cell = AtomicCell(4)
        core.begin("f")
        assert core.cache.atomic_read(cell) == 5
        core.end()
