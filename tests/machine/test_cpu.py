"""Machine topology tests."""

import pytest

from repro.errors import ConfigurationError
from repro.machine.cpu import Machine
from repro.machine.faults import Fault, FaultKind
from repro.machine.units import Unit


def test_topology_layout():
    machine = Machine(cores_per_node=4, numa_nodes=2)
    assert len(machine) == 8
    assert machine.core(0).numa_node == 0
    assert machine.core(3).numa_node == 0
    assert machine.core(4).numa_node == 1
    assert len(machine.node_cores(1)) == 4


def test_invalid_topology_rejected():
    with pytest.raises(ConfigurationError):
        Machine(cores_per_node=0)
    with pytest.raises(ConfigurationError):
        Machine(numa_nodes=0)


def test_arm_and_disarm():
    machine = Machine(cores_per_node=2, numa_nodes=1)
    machine.arm(1, Fault(unit=Unit.ALU, kind=FaultKind.BITFLIP))
    assert [c.core_id for c in machine.mercurial_cores] == [1]
    assert [c.core_id for c in machine.healthy_cores] == [0]
    machine.disarm_all()
    assert machine.mercurial_cores == []


def test_sibling_prefers_same_numa_node():
    machine = Machine(cores_per_node=4, numa_nodes=2)
    sibling = machine.sibling_core(1)
    assert sibling.core_id != 1
    assert sibling.numa_node == 0


def test_sibling_crosses_node_when_needed():
    machine = Machine(cores_per_node=1, numa_nodes=2)
    sibling = machine.sibling_core(0)
    assert sibling.core_id == 1
    assert sibling.numa_node == 1


def test_sibling_requires_two_cores():
    machine = Machine(cores_per_node=1, numa_nodes=1)
    with pytest.raises(ConfigurationError):
        machine.sibling_core(0)


def test_core_seeds_differ():
    machine = Machine(cores_per_node=2, numa_nodes=1, seed=3)
    assert machine.core(0)._rng.random() != machine.core(1)._rng.random()
