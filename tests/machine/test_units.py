"""Unit taxonomy tests."""

from repro.machine.units import ALIBABA_FAULT_RATIO, CYCLE_COST, Unit


def test_all_units_have_cycle_costs():
    for unit in Unit:
        assert CYCLE_COST[unit] >= 1


def test_all_units_have_fault_ratio():
    for unit in Unit:
        assert ALIBABA_FAULT_RATIO[unit] >= 1


def test_alibaba_ratio_is_1_2_2_1():
    assert ALIBABA_FAULT_RATIO[Unit.ALU] == 1
    assert ALIBABA_FAULT_RATIO[Unit.SIMD] == 2
    assert ALIBABA_FAULT_RATIO[Unit.FPU] == 2
    assert ALIBABA_FAULT_RATIO[Unit.CACHE] == 1


def test_fp_and_vector_are_error_prone():
    assert Unit.FPU.error_prone
    assert Unit.SIMD.error_prone
    assert not Unit.ALU.error_prone
    assert not Unit.CACHE.error_prone


def test_cache_instructions_cost_most():
    assert CYCLE_COST[Unit.CACHE] > CYCLE_COST[Unit.FPU] > CYCLE_COST[Unit.ALU]
