"""Site and Trace record tests."""

from repro.machine.instruction import Site, Trace
from repro.machine.units import CYCLE_COST, Unit


class TestSite:
    def test_identity(self):
        assert Site("f", "add", 0) == Site("f", "add", 0)
        assert Site("f", "add", 0) != Site("f", "add", 1)
        assert Site("f", "add", 0) != Site("g", "add", 0)

    def test_hashable(self):
        assert len({Site("f", "add", 0), Site("f", "add", 0)}) == 1

    def test_str(self):
        assert str(Site("mc.set", "hash64", 2)) == "mc.set:hash64#2"


class TestTrace:
    def test_record_counts_and_cycles(self):
        trace = Trace()
        trace.record(Unit.ALU)
        trace.record(Unit.ALU)
        trace.record(Unit.FPU)
        assert trace.count(Unit.ALU) == 2
        assert trace.count(Unit.FPU) == 1
        assert trace.total_instructions == 3
        assert trace.cycles == 2 * CYCLE_COST[Unit.ALU] + CYCLE_COST[Unit.FPU]

    def test_sites_recorded_only_when_enabled(self):
        site = Site("f", "add", 0)
        silent = Trace()
        silent.record(Unit.ALU, site)
        assert silent.sites == set()
        loud = Trace(record_sites=True)
        loud.record(Unit.ALU, site)
        assert loud.sites == {site}

    def test_merge(self):
        a = Trace(record_sites=True)
        a.record(Unit.ALU, Site("f", "add", 0))
        b = Trace(record_sites=True)
        b.record(Unit.ALU, Site("f", "add", 1))
        b.record(Unit.SIMD, Site("f", "vsum", 0))
        a.merge(b)
        assert a.count(Unit.ALU) == 2
        assert a.count(Unit.SIMD) == 1
        assert len(a.sites) == 3
        assert a.cycles == 2 * CYCLE_COST[Unit.ALU] + CYCLE_COST[Unit.SIMD]

    def test_count_unknown_unit_zero(self):
        assert Trace().count(Unit.CACHE) == 0
