"""Metric primitives and the registry: instruments, families, snapshots."""

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    StreamingHistogram,
    default_latency_buckets,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.read() == 12.0

    def test_callback_gauge_sampled_at_read_time(self):
        depth = [0]
        gauge = Gauge()
        gauge.set_function(lambda: float(depth[0]))
        depth[0] = 7
        assert gauge.read() == 7.0
        depth[0] = 3
        assert gauge.snapshot()["value"] == 3.0


class TestStreamingHistogram:
    def test_exact_count_sum_min_max(self):
        hist = StreamingHistogram()
        for value in (1e-6, 2e-6, 4e-6, 1e-3):
            hist.record(value)
        assert hist.count == 4
        assert hist.sum == pytest.approx(1e-3 + 7e-6)
        assert hist.min == 1e-6
        assert hist.max == 1e-3

    def test_empty_is_zero(self):
        hist = StreamingHistogram()
        assert hist.count == 0
        assert hist.mean == 0.0
        assert hist.p95 == 0.0
        assert hist.min == 0.0 and hist.max == 0.0

    def test_percentiles_ordered_and_bounded(self):
        hist = StreamingHistogram()
        for i in range(1, 101):
            hist.record(i * 1e-6)
        assert hist.p50 <= hist.p95 <= hist.p99 <= hist.max
        assert hist.percentile(0) >= hist.min
        assert hist.percentile(100) <= hist.max

    def test_percentile_error_bounded_by_bucket_spacing(self):
        # Factor-2 buckets: any estimate is within 2x of the true value.
        hist = StreamingHistogram()
        for i in range(1, 1001):
            hist.record(i * 1e-6)
        true_p50 = 500.5e-6
        assert true_p50 / 2 <= hist.p50 <= true_p50 * 2

    def test_percentile_range_checked(self):
        with pytest.raises(ValueError):
            StreamingHistogram().percentile(101)

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            StreamingHistogram(buckets=[2.0, 1.0])

    def test_merge(self):
        a, b = StreamingHistogram(), StreamingHistogram()
        a.record(1e-6)
        b.record(1e-3)
        a.merge(b)
        assert a.count == 2
        assert a.min == 1e-6 and a.max == 1e-3

    def test_merge_requires_identical_buckets(self):
        with pytest.raises(ValueError):
            StreamingHistogram().merge(StreamingHistogram(buckets=[1.0]))

    def test_overflow_bucket_catches_large_values(self):
        hist = StreamingHistogram()
        hist.record(1e9)  # beyond the last bound
        assert hist.counts[-1] == 1
        assert hist.count == 1

    def test_summary_duck_compatible_with_sim_histogram(self):
        hist = StreamingHistogram()
        hist.record(1e-6)
        assert set(hist.summary()) == {"count", "mean", "p50", "p95", "p99", "max"}


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", {"closure": "kv.get"})
        b = registry.counter("x_total", {"closure": "kv.get"})
        assert a is b

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", {"a": "1", "b": "2"})
        b = registry.counter("x_total", {"b": "2", "a": "1"})
        assert a is b

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ValueError):
            registry.gauge("x_total")

    def test_value_sums_family_when_unlabeled(self):
        registry = MetricsRegistry()
        registry.counter("v_total", {"closure": "a"}).inc(3)
        registry.counter("v_total", {"closure": "b"}).inc(4)
        assert registry.value("v_total") == 7.0
        assert registry.value("v_total", {"closure": "a"}) == 3.0
        assert registry.value("missing") == 0.0

    def test_series_lists_labels(self):
        registry = MetricsRegistry()
        registry.gauge("depth", {"queue": "0"}).set(2)
        registry.gauge("depth", {"queue": "1"}).set(5)
        labels = sorted(lbl["queue"] for lbl, _ in registry.series("depth"))
        assert labels == ["0", "1"]

    def test_merge_folds_counters_gauges_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c_total").inc(1)
        b.counter("c_total").inc(2)
        b.gauge("g").set(5)
        b.histogram("h").record(1e-6)
        a.merge(b)
        assert a.value("c_total") == 3.0
        assert a.value("g") == 5.0
        assert a.value("h") == 1.0

    def test_snapshot_round_trip(self):
        import json

        registry = MetricsRegistry()
        registry.counter("c_total", {"closure": "kv.get"}, help="c").inc(9)
        registry.gauge("g", help="g").set_function(lambda: 4.0)
        hist = registry.histogram("h_seconds", {"caller": "f"}, help="h")
        for value in (1e-6, 3e-6, 2e-3):
            hist.record(value)
        # Through JSON: what --metrics-out writes is what obs-summary reads.
        snapshot = json.loads(json.dumps(registry.snapshot()))
        restored = MetricsRegistry.from_snapshot(snapshot)
        assert restored.value("c_total", {"closure": "kv.get"}) == 9.0
        assert restored.value("g") == 4.0  # callback frozen at sample time
        back = restored.series("h_seconds")[0][1]
        assert back.count == hist.count
        assert back.sum == hist.sum
        assert back.min == hist.min and back.max == hist.max
        assert back.p95 == hist.p95

    def test_from_snapshot_rejects_unknown_format(self):
        with pytest.raises(ValueError):
            MetricsRegistry.from_snapshot({"format": "something-else"})


def test_default_buckets_sorted_and_span_ns_to_seconds():
    buckets = default_latency_buckets()
    assert buckets == sorted(buckets)
    assert buckets[0] == 1e-9
    assert buckets[-1] > 1.0
