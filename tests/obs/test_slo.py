"""SLO monitor: objective parsing, breach/recover, anomaly hooks."""

import pytest

from repro.detection import DetectionReport
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    EwmaAnomalyDetector,
    SloMonitor,
    SloObjective,
    default_objectives,
)
from repro.obs.timeseries import TimeSeriesConfig, TimeSeriesRecorder
from repro.obs.trace import Tracer


class SettableProbe:
    """Test probe: whatever `value` holds is the sample."""

    def __init__(self):
        self.value = 0.0

    def sample(self, registry, now, dt):
        return self.value


def make_monitor(objective, **kwargs):
    registry = MetricsRegistry()
    recorder = TimeSeriesRecorder(registry, TimeSeriesConfig(cadence=1.0))
    probe = SettableProbe()
    recorder.add_series(objective.series, probe)
    monitor = SloMonitor(recorder, objectives=[objective], **kwargs)
    return recorder, probe, monitor


class TestSloObjective:
    def test_parse_with_units(self):
        objective = SloObjective.parse("validation_lag_p95 p95 <= 200us")
        assert objective.series == "validation_lag_p95"
        assert objective.stat == "p95"
        assert objective.threshold == pytest.approx(200e-6)
        percent = SloObjective.parse("sampler_skip_rate mean <= 60%")
        assert percent.threshold == pytest.approx(0.6)

    def test_parse_rejects_malformed_specs(self):
        with pytest.raises(ValueError):
            SloObjective.parse("just_three <= 1")
        with pytest.raises(ValueError):
            SloObjective.parse("series stat == 1")
        with pytest.raises(ValueError):
            SloObjective.parse("series stat <= banana")

    def test_default_objectives_cover_lag_and_skipping(self):
        names = {o.name for o in default_objectives()}
        assert names == {"detection-latency", "coverage-floor"}


class TestBreachRecover:
    def objective(self, **kw):
        return SloObjective(
            name="lag", series="lag", stat="mean", op="<=", threshold=1.0,
            window=2.0, **kw,
        )

    def test_breach_and_recover_emit_trace_events(self):
        tracer = Tracer()
        recorder, probe, monitor = make_monitor(self.objective(), tracer=tracer)
        probe.value = 0.5
        recorder.sample(0.0)
        probe.value = 5.0
        recorder.sample(3.0)   # window [1,3] sees only the bad sample
        probe.value = 0.5
        recorder.sample(6.0)   # window [4,6] sees only the good sample
        kinds = [e.kind for e in tracer]
        assert kinds.count("slo.breach") == 1
        assert kinds.count("slo.recover") == 1
        report = monitor.finalize(6.0)
        result = report.results[0]
        assert result.breaches == 1
        assert result.breached_now is False
        assert result.breach_time == pytest.approx(3.0)
        assert report.ok

    def test_open_breach_closed_by_finalize(self):
        recorder, probe, monitor = make_monitor(self.objective())
        probe.value = 5.0
        recorder.sample(0.0)
        report = monitor.finalize(4.0)
        result = report.results[0]
        assert result.breached_now is True
        assert result.breach_time == pytest.approx(4.0)
        assert not report.ok
        assert report.breached_objectives == 1

    def test_burn_window_requires_short_window_confirmation(self):
        # The long window still carries the old spike, but the short
        # window is clean — burn-rate logic suppresses the breach.
        objective = self.objective(burn_window=1.0)
        objective = SloObjective(
            name="lag", series="lag", stat="max", op="<=", threshold=1.0,
            window=10.0, burn_window=1.0,
        )
        recorder, probe, monitor = make_monitor(objective)
        probe.value = 5.0
        recorder.sample(0.0)
        probe.value = 0.1
        recorder.sample(5.0)  # long window max=5 violates; short is clean
        report = monitor.finalize(5.0)
        result = report.results[0]
        assert result.breaches == 1      # the t=0 tick breached for real
        assert result.breached_now is False  # t=5 suppressed by burn window

    def test_min_samples_gates_evaluation(self):
        objective = SloObjective(
            name="lag", series="lag", stat="mean", op="<=", threshold=1.0,
            min_samples=3,
        )
        recorder, probe, monitor = make_monitor(objective)
        probe.value = 9.0
        recorder.sample(0.0)
        recorder.sample(1.0)
        assert monitor.finalize(1.0).evaluated_objectives == 0
        recorder.sample(2.0)
        assert monitor.finalize(2.0).results[0].evaluations == 1

    def test_worst_value_tracks_across_compliant_samples(self):
        recorder, probe, monitor = make_monitor(self.objective())
        for t, value in enumerate((0.2, 0.8, 0.4)):
            probe.value = value
            recorder.sample(float(t) * 3)
        result = monitor.finalize(9.0).results[0]
        assert result.worst_value == pytest.approx(0.8)
        assert result.compliance == 1.0


class TestEwmaAnomalyDetector:
    def test_step_change_flags_after_warmup(self):
        detector = EwmaAnomalyDetector(alpha=0.2, z_threshold=4.0, warmup=8)
        for _ in range(20):
            anomalous, _ = detector.update(1.0 + 0.01 * (_ % 3))
            assert not anomalous
        anomalous, z = detector.update(50.0)
        assert anomalous and z >= 4.0

    def test_never_flags_during_warmup(self):
        detector = EwmaAnomalyDetector(warmup=8)
        flags = [detector.update(v)[0] for v in (1.0, 1.0, 100.0, 1.0)]
        assert flags == [False, False, False, False]

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            EwmaAnomalyDetector(alpha=0.0)


class TestAnomalyHooks:
    def make(self, report=None, tracer=None):
        registry = MetricsRegistry()
        recorder = TimeSeriesRecorder(registry, TimeSeriesConfig(cadence=1.0))
        lag, depth = SettableProbe(), SettableProbe()
        recorder.add_series(SloMonitor.LAG_SERIES, lag)
        recorder.add_series(SloMonitor.DEPTH_SERIES, depth)
        monitor = SloMonitor(recorder, objectives=[], report=report, tracer=tracer)
        return recorder, lag, depth, monitor

    def run_regime(self, lag_spike, depth_spike, report=None, tracer=None):
        recorder, lag, depth, monitor = self.make(report=report, tracer=tracer)
        for t in range(12):
            lag.value = 1.0 + 0.01 * (t % 2)
            depth.value = 3.0 + 0.01 * (t % 2)
            recorder.sample(float(t))
        if lag_spike:
            lag.value = 500.0
        if depth_spike:
            depth.value = 900.0
        recorder.sample(12.0)
        return monitor

    def test_joint_spike_is_validator_starvation(self):
        monitor = self.run_regime(lag_spike=True, depth_spike=True)
        regimes = {a["regime"] for a in monitor.anomalies}
        assert regimes == {"validator-starvation"}
        assert len(monitor.anomalies) == 2  # one record per flagged series

    def test_lone_spikes_get_their_own_regimes(self):
        assert {
            a["regime"]
            for a in self.run_regime(lag_spike=True, depth_spike=False).anomalies
        } == {"lag-spike"}
        assert {
            a["regime"]
            for a in self.run_regime(lag_spike=False, depth_spike=True).anomalies
        } == {"depth-spike"}

    def test_feeds_detection_report_and_tracer(self):
        report = DetectionReport()
        tracer = Tracer()
        monitor = self.run_regime(
            lag_spike=True, depth_spike=True, report=report, tracer=tracer
        )
        assert monitor.anomalies  # sanity
        assert report.anomaly_regimes() == {"validator-starvation": 2}
        summary = report.summary()
        assert summary["anomalies"]["total"] == 2
        assert summary["anomalies"]["by_regime"] == {"validator-starvation": 2}
        assert len(tracer.of_kind("anomaly.flag")) == 2

    def test_quiet_run_flags_nothing(self):
        monitor = self.run_regime(lag_spike=False, depth_spike=False)
        assert monitor.anomalies == []
        report = monitor.finalize(12.0)
        assert report.anomalies == []
        # An empty DetectionReport summary must stay anomaly-free too.
        assert "anomalies" not in DetectionReport().summary()
