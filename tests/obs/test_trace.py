"""Tracer behavior: recording, the event cap, and the null implementation."""

import pytest

from repro.obs.observability import NULL_OBS, Observability
from repro.obs.trace import NULL_TRACER, Tracer


class TestTracer:
    def test_records_events_in_order(self):
        tracer = Tracer()
        tracer.emit("closure.run", ts=1.0, seq=1)
        tracer.emit("queue.push", ts=2.0, seq=1, queue=0)
        assert [e.kind for e in tracer] == ["closure.run", "queue.push"]
        assert tracer.events[0].as_dict() == {
            "event_seq": 1, "ts": 1.0, "kind": "closure.run", "seq": 1,
        }

    def test_event_seq_totally_orders_emissions(self):
        # Same-timestamp events (ubiquitous under a virtual clock) still
        # get a strict total order via the per-tracer emission counter.
        tracer = Tracer()
        for _ in range(5):
            tracer.emit("closure.run", ts=0.0, seq=9)
        seqs = [e.event_seq for e in tracer]
        assert seqs == [1, 2, 3, 4, 5]

    def test_event_seq_advances_past_dropped_events(self):
        # Gaps in event_seq are the post-hoc evidence that the cap dropped
        # something, so dropped events must still consume numbers.
        tracer = Tracer(max_events=2)
        for i in range(5):
            tracer.emit("closure.run", ts=float(i), seq=i)
        assert [e.event_seq for e in tracer] == [1, 2]
        tracer.emit("late", ts=9.0)
        assert tracer.dropped == 4

    def test_clear_resets_event_seq(self):
        tracer = Tracer()
        tracer.emit("a", ts=0.0)
        tracer.clear()
        tracer.emit("b", ts=0.0)
        assert tracer.events[0].event_seq == 1

    def test_of_kind_and_for_seq(self):
        tracer = Tracer()
        tracer.emit("closure.run", ts=0.0, seq=1)
        tracer.emit("closure.run", ts=0.0, seq=2)
        tracer.emit("validator.validate", ts=1.0, seq=1)
        assert len(tracer.of_kind("closure.run")) == 2
        assert [e.kind for e in tracer.for_seq(1)] == [
            "closure.run", "validator.validate",
        ]

    def test_cap_drops_instead_of_growing(self):
        tracer = Tracer(max_events=2)
        for i in range(5):
            tracer.emit("closure.run", ts=float(i), seq=i)
        assert len(tracer) == 2
        assert tracer.dropped == 3

    def test_cap_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(max_events=0)

    def test_clear(self):
        tracer = Tracer(max_events=1)
        tracer.emit("a", ts=0.0)
        tracer.emit("b", ts=0.0)
        tracer.clear()
        assert len(tracer) == 0 and tracer.dropped == 0


class TestNullTracer:
    def test_emit_is_noop(self):
        NULL_TRACER.emit("closure.run", ts=0.0, seq=1)
        assert len(NULL_TRACER) == 0
        assert list(NULL_TRACER) == []
        assert NULL_TRACER.of_kind("closure.run") == []
        assert NULL_TRACER.for_seq(1) == []
        assert NULL_TRACER.enabled is False


class TestObservability:
    def test_enabled_handle_bundles_registry_and_tracer(self):
        obs = Observability()
        assert obs.enabled is True
        assert obs.tracer.enabled is True
        obs.registry.counter("x_total").inc()
        assert obs.snapshot()["metrics"][0]["name"] == "x_total"

    def test_trace_false_uses_null_tracer(self):
        obs = Observability(trace=False)
        assert obs.enabled is True
        assert obs.tracer is NULL_TRACER

    def test_null_obs_is_disabled_but_inert_safe(self):
        assert NULL_OBS.enabled is False
        assert NULL_OBS.tracer is NULL_TRACER
        # Unguarded writes must not crash (they just go nowhere useful).
        NULL_OBS.registry.counter("stray_total").inc()
