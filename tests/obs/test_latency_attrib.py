"""Detection-latency attribution: the reconciliation invariant.

A real pipeline run must decompose into at least the four canonical
causal stages, and for every verdict-terminated chain the per-stage
durations must tile closure-start → verdict exactly.  A residual means a
driver recorded overlapping or gapped spans.
"""

import pytest

from repro.harness.chaos import run_chaos_server
from repro.harness.pipeline import PipelineConfig, run_orthrus_server
from repro.harness.scenarios import memcached_scenario
from repro.obs import (
    Observability,
    attribute,
    render_waterfall,
    stage_stats_from_registry,
)
from repro.obs.latency import StageStats, _percentile


def run(runner=run_orthrus_server, **kwargs):
    obs = Observability()
    config = PipelineConfig(
        app_threads=2, validation_cores=2, seed=7, obs=obs, **kwargs
    )
    result = runner(memcached_scenario(), 300, config)
    assert not result.crashed, result.crash_reason
    return result, obs


class TestAttribution:
    def test_pipeline_decomposes_into_causal_stages(self):
        _, obs = run()
        attr = attribute(obs.spans)
        stages = attr.stages()
        for stage in ("closure.run", "queue.wait", "dispatch", "validate"):
            assert stage in stages, f"missing stage {stage}"
        assert len([s for s in stages if stages[s].count]) >= 4

    def test_stage_sums_reconcile_with_end_to_end(self):
        _, obs = run()
        attr = attribute(obs.spans)
        recon = attr.reconciliation()
        assert recon["chains"] > 0
        assert recon["reconciled"], recon
        assert recon["max_residual"] < 1e-9

    def test_chaos_driver_reconciles_too(self):
        _, obs = run(runner=run_chaos_server)
        attr = attribute(obs.spans)
        recon = attr.reconciliation()
        assert recon["chains"] > 0
        assert recon["reconciled"], recon

    def test_by_closure_and_by_level_grouping(self):
        _, obs = run()
        attr = attribute(obs.spans)
        by_closure = attr.by_closure()
        assert any(c.startswith("mc.") for c in by_closure)
        by_level = attr.by_level()
        assert "normal" in by_level

    def test_end_to_end_stats_positive(self):
        _, obs = run()
        attr = attribute(obs.spans)
        e2e = attr.end_to_end()
        assert e2e.count > 0
        assert e2e.p50 > 0
        assert e2e.max >= e2e.p99 >= e2e.p95 >= e2e.p50

    def test_registry_histogram_matches_span_buffer(self):
        # The per-stage histogram family is the survivable form of the
        # same data: counts and sums must agree with the raw spans.
        _, obs = run()
        attr = attribute(obs.spans)
        from_registry = stage_stats_from_registry(obs.registry)
        for stage, stats in attr.stages().items():
            assert from_registry[stage].count == stats.count
            assert from_registry[stage].total == pytest.approx(stats.total)


class TestRendering:
    def test_waterfall_renders_all_stages(self):
        _, obs = run()
        attr = attribute(obs.spans)
        text = render_waterfall(attr.stages())
        for stage in ("closure.run", "queue.wait", "dispatch", "validate"):
            assert stage in text
        assert "share" in text

    def test_waterfall_empty(self):
        assert "no spans" in render_waterfall({})

    def test_percentile_interpolation(self):
        assert _percentile([], 0.5) == 0.0
        assert _percentile([3.0], 0.99) == 3.0
        assert _percentile([1.0, 2.0, 3.0, 4.0], 0.5) == pytest.approx(2.5)

    def test_stage_stats_mean(self):
        stats = StageStats(count=4, total=8.0, p50=2.0, p95=2.0, p99=2.0, max=2.0)
        assert stats.mean == 2.0
        assert StageStats(0, 0.0, 0.0, 0.0, 0.0, 0.0).mean == 0.0
