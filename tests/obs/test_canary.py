"""Liveness canaries: known-corrupt probes that prove detection works.

Three properties matter: the schedule is deterministic from the seed,
canaries in a healthy run are always detected (and never leak into
organic coverage accounting or the response layer), and a dead
validation plane raises ``canary.missed`` within one deadline — before
the degradation ladder reacts.
"""

import pytest

from repro.detection import DetectionEvent, DetectionReport, is_canary_closure
from repro.errors import ConfigurationError
from repro.faultinject.validator_faults import ValidatorChaosConfig
from repro.harness.chaos import run_chaos_server
from repro.harness.pipeline import PipelineConfig, run_orthrus_server
from repro.harness.scenarios import memcached_scenario
from repro.obs import Observability
from repro.obs.canary import (
    CANARY_CLOSURE,
    CanaryConfig,
    CanaryScheduler,
    LivenessMonitor,
    is_canary_log,
)
from repro.runtime.degradation import FaultToleranceConfig

PERIOD = 50e-6


def run(runner=run_orthrus_server, n_ops=300, obs=None, **kwargs):
    config = PipelineConfig(
        app_threads=2, validation_cores=2, seed=7, obs=obs,
        canary=CanaryConfig(period=PERIOD), **kwargs
    )
    result = runner(memcached_scenario(), n_ops, config)
    assert not result.crashed, result.crash_reason
    return result


class TestScheduler:
    def test_same_seed_same_schedule(self):
        a = CanaryScheduler(CanaryConfig(period=PERIOD), seed=11)
        b = CanaryScheduler(CanaryConfig(period=PERIOD), seed=11)
        logs_a = [a.next_log(i, i * PERIOD) for i in range(8)]
        logs_b = [b.next_log(i, i * PERIOD) for i in range(8)]
        assert [l.args for l in logs_a] == [l.args for l in logs_b]
        assert [l.retval for l in logs_a] == [l.retval for l in logs_b]

    def test_different_seed_different_nonces(self):
        a = CanaryScheduler(CanaryConfig(period=PERIOD), seed=11)
        b = CanaryScheduler(CanaryConfig(period=PERIOD), seed=12)
        assert [a.next_log(i, 0.0).args for i in range(8)] != \
               [b.next_log(i, 0.0).args for i in range(8)]

    def test_minted_logs_are_corrupt_canaries(self):
        sched = CanaryScheduler(CanaryConfig(period=PERIOD), seed=1)
        log = sched.next_log(5, 1e-3)
        assert is_canary_log(log)
        assert is_canary_closure(log.closure_name)
        assert log.core_id == -1
        # the recorded retval never matches the honest re-execution
        assert log.func(*log.args) != log.retval

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            CanaryConfig(period=0.0)
        # a non-positive deadline means "use the default of 3x the period"
        assert CanaryConfig(period=1e-4).deadline == pytest.approx(3e-4)
        assert CanaryConfig(period=1e-4, deadline=-1.0).deadline == \
            pytest.approx(3e-4)


class TestLivenessMonitor:
    def test_miss_raises_incident_once(self):
        report = DetectionReport()
        config = CanaryConfig(period=PERIOD)
        monitor = LivenessMonitor(config, report)
        sched = CanaryScheduler(config, seed=3)
        log = sched.next_log(1, 0.0)
        monitor.issue(log, 0.0)
        assert monitor.poll(config.deadline / 2) == []
        missed = monitor.poll(config.deadline + PERIOD)
        assert missed == [1]
        assert monitor.missed == 1
        events = [e for e in report.events if e.kind == "canary.missed"]
        assert len(events) == 1
        # polling again never re-raises for the same canary
        assert monitor.poll(config.deadline + 2 * PERIOD) == []

    def test_detection_settles_canary(self):
        report = DetectionReport()
        config = CanaryConfig(period=PERIOD)
        monitor = LivenessMonitor(config, report)
        sched = CanaryScheduler(config, seed=3)
        log = sched.next_log(1, 0.0)
        monitor.issue(log, 0.0)
        report.record(DetectionEvent(
            kind="mismatch", closure=CANARY_CLOSURE, seq=1, time=PERIOD,
        ))
        assert monitor.poll(2 * PERIOD) == []
        assert monitor.detected == 1
        assert monitor.missed == 0

    def test_finalize_forgives_in_window_outstanding(self):
        report = DetectionReport()
        config = CanaryConfig(period=PERIOD)
        monitor = LivenessMonitor(config, report)
        sched = CanaryScheduler(config, seed=3)
        monitor.issue(sched.next_log(1, 0.0), 0.0)
        monitor.finalize(config.deadline / 2)
        assert monitor.missed == 0
        assert monitor.outstanding == 0


class TestHealthyRuns:
    def test_pipeline_detects_every_canary(self):
        result = run()
        assert result.canary["issued"] > 0
        assert result.canary["detected"] == result.canary["issued"]
        assert result.canary["missed"] == 0
        # manufactured mismatches never pollute organic coverage
        assert result.runtime.report.count_organic() == 0

    def test_chaos_driver_detects_every_canary(self):
        result = run(runner=run_chaos_server)
        assert result.canary["issued"] > 0
        assert result.canary["missed"] == 0
        assert result.ft.conserved

    def test_canary_determinism_same_seed_same_outcome(self):
        a = run()
        b = run()
        assert a.canary == b.canary
        assert a.digest == b.digest

    def test_canary_invisible_to_app_state(self):
        with_canary = run()
        config = PipelineConfig(app_threads=2, validation_cores=2, seed=7)
        without = run_orthrus_server(memcached_scenario(), 300, config)
        assert with_canary.digest == without.digest
        assert with_canary.metrics.validated == without.metrics.validated

    def test_counters_distinguish_canary_from_organic(self):
        obs = Observability()
        run(obs=obs)
        issued = obs.registry.value("orthrus_canary_issued_total")
        detected = obs.registry.value("orthrus_canary_detected_total")
        assert issued > 0
        assert detected == issued


class TestDeadPlane:
    def _hang_all(self, **kwargs):
        obs = Observability()
        config = PipelineConfig(
            app_threads=2, validation_cores=2, seed=7, obs=obs,
            canary=CanaryConfig(period=PERIOD),
            validator_faults=ValidatorChaosConfig(specs=(("hang", 2),)),
            fault_tolerance=FaultToleranceConfig(queue_capacity=256),
            **kwargs,
        )
        result = run_chaos_server(memcached_scenario(), 400, config)
        assert not result.crashed, result.crash_reason
        return result

    def test_hung_plane_raises_canary_missed(self):
        result = self._hang_all()
        assert result.canary["missed"] >= 1
        events = [
            e for e in result.runtime.report.events if e.kind == "canary.missed"
        ]
        assert events
        # the alarm fires within one deadline of the canary going overdue
        # (poll cadence is deadline/4, so the slack is bounded)
        deadline = result.canary["deadline"]
        first = result.canary["first_missed_at"]
        assert first is not None
        assert first <= PERIOD + 2 * deadline

    def test_alarm_fires_before_degradation_ladder(self):
        result = self._hang_all()
        first_miss = result.canary["first_missed_at"]
        assert first_miss is not None
        transitions = result.ft.degradation["transitions"]
        if transitions:
            assert first_miss < transitions[0]["time"]
        # zero organic false positives either way
        assert result.runtime.report.count_organic() == 0
