"""Unit tests for the wall-clock self-profiler (repro.obs.profiling).

A fake nanosecond clock drives the timer tests, so every duration below
is exact — no sleeps, no flakiness.  Wall time never feeds any
determinism digest (that property is covered end-to-end by
tests/harness/test_profile_parity.py and tests/fleet/test_fleet_profile.py);
here we pin down the timer algebra itself: nesting, reentrancy,
exception safety, self-time math, merge associativity, and the sampling
profiler's overhead budget.
"""

from __future__ import annotations

import sys

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.profiling import (
    NULL_PROFILER,
    PROFILE_FORMAT,
    ProfileConfig,
    Profiler,
    SamplingProfiler,
    activation,
    active,
    collapsed_stacks,
    export_profile,
    format_rate,
    format_wall,
    load_profile_json,
    make_profiler,
    merge_profiles,
    render_profile,
    share_attribution,
    worker_summary,
    write_profile_json,
)


class FakeClock:
    """Deterministic perf_counter_ns stand-in: advances only on demand."""

    def __init__(self):
        self.t = 0

    def __call__(self) -> int:
        return self.t

    def advance(self, ns: int) -> None:
        self.t += ns


def make_clocked() -> tuple[Profiler, FakeClock]:
    clock = FakeClock()
    return Profiler(_clock=clock), clock


def node_map(payload: dict) -> dict[str, dict]:
    return {node["path"]: node for node in payload["nodes"]}


# ----------------------------------------------------------------------
# timer scopes


class TestScopes:
    def test_nested_scopes_accumulate_under_full_path(self):
        prof, clock = make_clocked()
        with prof.scope("driver"):
            clock.advance(100)
            with prof.scope("inner"):
                clock.advance(40)
        prof.stop()
        nodes = node_map(prof.to_payload())
        assert nodes["driver"]["total_ns"] == 140
        assert nodes["driver;inner"]["total_ns"] == 40
        # self time excludes the child's share
        assert nodes["driver"]["self_ns"] == 100
        assert nodes["driver;inner"]["self_ns"] == 40

    def test_reentrant_scope_nests_rather_than_merging(self):
        prof, clock = make_clocked()
        with prof.scope("a"):
            clock.advance(10)
            with prof.scope("a"):
                clock.advance(5)
        prof.stop()
        nodes = node_map(prof.to_payload())
        assert nodes["a"]["total_ns"] == 15
        assert nodes["a;a"]["total_ns"] == 5
        # ...but the subsystem rollup (by leaf name) pools both frames
        subsystems = {
            s["name"]: s for s in prof.to_payload()["subsystems"]
        }
        assert subsystems["a"]["self_ns"] == 15
        assert subsystems["a"]["calls"] == 2

    def test_scope_pops_on_exception(self):
        prof, clock = make_clocked()
        with pytest.raises(RuntimeError):
            with prof.scope("outer"):
                clock.advance(7)
                raise RuntimeError("boom")
        # the stack unwound: a later scope is a root, not outer;child
        with prof.scope("later"):
            clock.advance(3)
        prof.stop()
        nodes = node_map(prof.to_payload())
        assert nodes["outer"]["total_ns"] == 7
        assert nodes["later"]["total_ns"] == 3

    def test_lap_lands_under_current_stack(self):
        prof, clock = make_clocked()
        with prof.scope("driver"):
            t0 = prof.now()
            clock.advance(25)
            prof.lap("queue.push", t0)
            clock.advance(5)
        prof.stop()
        nodes = node_map(prof.to_payload())
        assert nodes["driver;queue.push"]["total_ns"] == 25
        assert nodes["driver"]["self_ns"] == 5

    def test_calls_counted_per_activation(self):
        prof, clock = make_clocked()
        for _ in range(3):
            with prof.scope("s"):
                clock.advance(2)
        prof.stop()
        assert node_map(prof.to_payload())["s"]["calls"] == 3


# ----------------------------------------------------------------------
# payload / meters / rendering


class TestPayload:
    def test_throughput_meters(self):
        prof, clock = make_clocked()
        with prof.scope("run"):
            clock.advance(2_000_000_000)  # 2s wall
        prof.add_events(500)
        prof.add_instructions(4000)
        prof.stop()
        payload = prof.to_payload()
        assert payload["format"] == PROFILE_FORMAT
        assert payload["wall_s"] == pytest.approx(2.0)
        assert payload["events_per_s"] == pytest.approx(250.0)
        assert payload["instructions_per_s"] == pytest.approx(2000.0)

    def test_shares_sum_to_at_most_one(self):
        prof, clock = make_clocked()
        with prof.scope("a"):
            clock.advance(60)
            with prof.scope("b"):
                clock.advance(40)
        clock.advance(100)  # un-attributed wall
        prof.stop()
        payload = prof.to_payload()
        total_share = sum(s["share"] for s in payload["subsystems"])
        assert 0 < total_share <= 1.0 + 1e-9

    def test_render_profile_mentions_top_subsystem(self):
        prof, clock = make_clocked()
        with prof.scope("validate.compare"):
            clock.advance(90)
        prof.stop()
        text = render_profile(prof.to_payload())
        assert "self-profile" in text
        assert "validate.compare" in text

    def test_collapsed_stack_lines(self):
        prof, clock = make_clocked()
        with prof.scope("a"):
            clock.advance(10)
            with prof.scope("b"):
                clock.advance(4)
        prof.stop()
        lines = collapsed_stacks(prof.to_payload())
        assert "a 10" in lines
        assert "a;b 4" in lines

    def test_json_round_trip(self, tmp_path):
        prof, clock = make_clocked()
        with prof.scope("x"):
            clock.advance(11)
        prof.stop()
        path = str(tmp_path / "p.json")
        write_profile_json(prof.to_payload(), path)
        assert load_profile_json(path) == prof.to_payload()

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "orthrus-metrics/1"}')
        with pytest.raises(ValueError):
            load_profile_json(str(path))

    def test_export_profile_families(self):
        prof, clock = make_clocked()
        with prof.scope("machine.execute"):
            clock.advance(1_000_000)
        prof.stop()
        registry = MetricsRegistry()
        export_profile(prof.to_payload(), registry)
        series = dict(
            (labels["subsystem"], child.value)
            for labels, child in registry.series(
                "profile_subsystem_seconds_total"
            )
        )
        assert series["machine.execute"] == pytest.approx(1e-3)


# ----------------------------------------------------------------------
# merge / attribution


def synthetic_payload(spans: dict[str, int], wall_ns: int, events: int) -> dict:
    prof = Profiler(_clock=(clock := FakeClock()))
    for name, ns in spans.items():
        with prof.scope(name):
            clock.advance(ns)
    clock.t = wall_ns
    prof.add_events(events)
    prof.stop()
    return prof.to_payload()


class TestMerge:
    def test_merge_sums_nodes_and_events(self):
        a = synthetic_payload({"x": 10}, wall_ns=100, events=5)
        b = synthetic_payload({"x": 30, "y": 1}, wall_ns=200, events=7)
        merged = merge_profiles([a, b])
        assert node_map(merged)["x"]["total_ns"] == 40
        assert merged["events"] == 12
        # concurrent workers: the straggler bounds elapsed wall
        assert merged["wall_s"] == pytest.approx(200e-9)

    def test_merge_is_associative(self):
        parts = [
            synthetic_payload({"x": i * 10, "y": i}, wall_ns=100 * i, events=i)
            for i in (1, 2, 3)
        ]
        left = merge_profiles([merge_profiles(parts[:2]), parts[2]])
        right = merge_profiles([parts[0], merge_profiles(parts[1:])])
        assert left["nodes"] == right["nodes"]
        assert left["events"] == right["events"]

    def test_worker_summary_names_straggler(self):
        fast = synthetic_payload({"w": 10}, wall_ns=50, events=1)
        slow = synthetic_payload({"w": 90}, wall_ns=100, events=2)
        summary = worker_summary([fast, slow])
        assert len(summary["workers"]) == 2
        assert summary["straggler"]["worker"] == 1

    def test_share_attribution_orders_by_delta(self):
        base = synthetic_payload(
            {"a": 50, "b": 25, "c": 25}, wall_ns=100, events=1
        )
        # b ballooned: it must be the top mover
        cur = synthetic_payload(
            {"a": 50, "b": 850, "c": 100}, wall_ns=1000, events=1
        )
        movers = share_attribution(base, cur)
        assert movers[0]["name"] == "b"
        assert movers[0]["delta"] > 0


# ----------------------------------------------------------------------
# null profiler / ambient activation


class TestActivation:
    def test_null_profiler_is_inert(self):
        assert NULL_PROFILER.enabled is False
        with NULL_PROFILER.scope("anything"):
            pass
        NULL_PROFILER.lap("x", NULL_PROFILER.now())
        NULL_PROFILER.add_events(3)
        NULL_PROFILER.stop()
        assert NULL_PROFILER.events == 0

    def test_activation_swaps_and_restores(self):
        assert active() is NULL_PROFILER
        prof = Profiler()
        with activation(prof):
            assert active() is prof
        assert active() is NULL_PROFILER

    def test_activation_restores_on_exception(self):
        with pytest.raises(ValueError):
            with activation(Profiler()):
                raise ValueError
        assert active() is NULL_PROFILER

    def test_make_profiler_spec_forms(self):
        assert make_profiler(None) is NULL_PROFILER
        assert make_profiler(False) is NULL_PROFILER
        assert isinstance(make_profiler(True), Profiler)
        prof = Profiler()
        assert make_profiler(prof) is prof
        sampled = make_profiler(ProfileConfig(sample=True, sample_budget=0.5))
        assert sampled.sampler is not None
        assert sampled.sampler.budget == 0.5


# ----------------------------------------------------------------------
# sampling profiler


class TestSampler:
    def test_budget_exhaustion_uninstalls(self):
        before = sys.getprofile()
        sampler = SamplingProfiler(budget=1e-12, check_every=1)
        sampler.install()
        try:
            # burn frames until the (absurdly tight) budget trips
            for _ in range(200):
                format_wall(0.5)
                if sampler.exhausted:
                    break
        finally:
            sampler.uninstall()
        assert sampler.exhausted
        assert sys.getprofile() is before

    def test_collects_python_frames_within_budget(self):
        before = sys.getprofile()
        sampler = SamplingProfiler(budget=1.0, check_every=1 << 30)
        sampler.install()
        try:
            for _ in range(50):
                format_rate(12345.0)
        finally:
            sampler.uninstall()
        assert sys.getprofile() is before
        lines = sampler.collapsed()
        assert lines
        assert all(line.startswith("py;") for line in lines)
        assert any("format_rate" in line for line in lines)

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            SamplingProfiler(budget=-0.1)

    def test_profiler_stop_uninstalls_sampler(self):
        before = sys.getprofile()
        prof = make_profiler(ProfileConfig(sample=True, sample_budget=1.0))
        prof.sampler.install()
        prof.stop()
        assert sys.getprofile() is before

    def test_sampler_summary_reports_overhead(self):
        sampler = SamplingProfiler(budget=1.0, check_every=1 << 30)
        sampler.install()
        try:
            for _ in range(20):
                format_wall(2e-5)
        finally:
            sampler.uninstall()
        summary = sampler.summary()
        assert summary["frames"] > 0
        assert summary["overhead_ns"] >= 0
        assert summary["exhausted"] is False


# ----------------------------------------------------------------------
# formatting helpers (the repo-wide rate/wall renderers)


class TestFormatting:
    @pytest.mark.parametrize(
        ("value", "expect"),
        [
            (12.0, "12 op/s"),
            (4_200.0, "4 kop/s"),
            (1_390_000.0, "1.39 Mop/s"),
            (2_500_000_000.0, "2.50 Gop/s"),
        ],
    )
    def test_format_rate(self, value, expect):
        assert format_rate(value) == expect

    @pytest.mark.parametrize(
        ("value", "expect"),
        [(2.5, "2.50s"), (0.0035, "3.50ms"), (4.2e-6, "4.2us")],
    )
    def test_format_wall(self, value, expect):
        assert format_wall(value) == expect
