"""Instrumentation hooks in the runtime, validator, and reclamation path."""

from repro.closures.annotation import closure
from repro.closures.context import ops
from repro.machine.cpu import Machine
from repro.machine.faults import Fault, FaultKind
from repro.machine.units import Unit
from repro.obs import Observability
from repro.obs.observability import NULL_OBS
from repro.runtime.orthrus import OrthrusRuntime


@closure(name="obs_test.incr")
def incr(ptr):
    value = ptr.load()
    ptr.store(ops().alu.add(value, 1))
    return value + 1


def make_runtime(obs=None, **kwargs):
    machine = Machine(cores_per_node=4, numa_nodes=1)
    if kwargs.pop("fault", None) is not None:
        machine.arm(0, Fault(unit=Unit.ALU, kind=FaultKind.BITFLIP, bit=5))
    return OrthrusRuntime(
        machine=machine, app_cores=[0], validation_cores=[1], obs=obs, **kwargs
    )


class TestDisabledDefault:
    def test_runtime_defaults_to_shared_null_obs(self):
        runtime = make_runtime()
        assert runtime.obs is NULL_OBS
        with runtime:
            incr(runtime.new(0))
        # Nothing recorded anywhere: no trace, no runtime gauges.
        assert len(NULL_OBS.tracer) == 0
        assert NULL_OBS.registry.get("orthrus_heap_live_bytes") is None


class TestInlineInstrumentation:
    def test_closure_and_validation_counters(self):
        obs = Observability()
        runtime = make_runtime(obs=obs)
        with runtime:
            ptr = runtime.new(0)
            for _ in range(5):
                incr(ptr)
        registry = obs.registry
        labels = {"closure": "obs_test.incr", "caller": "test_closure_and_validation_counters"}
        assert registry.value("orthrus_closures_total", labels) == 5.0
        assert registry.value("orthrus_validations_total", labels) == 5.0
        assert registry.value("orthrus_validation_mismatches_total") == 0.0
        assert registry.value("orthrus_closure_cycles_total", labels) > 0
        hist = registry.series("orthrus_validation_latency_seconds")[0][1]
        assert hist.count == 5

    def test_checksum_verifications_counted_and_traced(self):
        obs = Observability()
        runtime = make_runtime(obs=obs)
        with runtime:
            incr(runtime.new(0))
        ok = obs.registry.value(
            "orthrus_checksum_verifications_total",
            {"closure": "obs_test.incr", "result": "ok"},
        )
        assert ok >= 1  # APP first-load probe (plus the VAL re-run's)
        events = obs.tracer.of_kind("checksum.verify")
        assert events and all(e.fields["ok"] for e in events)

    def test_detections_counted_by_kind(self):
        obs = Observability()
        runtime = make_runtime(obs=obs, fault=True)
        with runtime:
            ptr = runtime.new(0)
            incr(ptr)
            incr(ptr)
        assert runtime.detections == 2
        assert obs.registry.value("orthrus_detections_total") == 2.0

    def test_heap_gauges_track_live_state(self):
        obs = Observability()
        runtime = make_runtime(obs=obs)
        with runtime:
            ptr = runtime.new(0)
            for _ in range(4):
                incr(ptr)
        registry = obs.registry
        assert registry.value("orthrus_heap_live_versions") == 1.0
        assert registry.value("orthrus_heap_versioned_bytes") >= registry.value(
            "orthrus_heap_live_bytes"
        )
        # Superseded versions await reclamation; reclaiming drops the gauge.
        assert registry.value("orthrus_heap_reclaimable_versions") > 0
        runtime.reclaimer.reclaim_now()
        assert registry.value("orthrus_heap_reclaimable_versions") == 0.0

    def test_reclaim_pass_counted_and_traced(self):
        obs = Observability()
        runtime = make_runtime(obs=obs, reclaim_batch=1)
        with runtime:
            ptr = runtime.new(0)
            for _ in range(3):
                incr(ptr)
        runtime.reclaimer.reclaim_now()
        registry = obs.registry
        assert registry.value("orthrus_reclaim_passes_total") >= 1
        assert registry.value("orthrus_versions_reclaimed_total") >= 1
        batches = obs.tracer.of_kind("reclaim.batch")
        assert batches
        assert sum(e.fields["reclaimed"] for e in batches) == registry.value(
            "orthrus_versions_reclaimed_total"
        )

    def test_closure_run_trace_has_lifecycle_fields(self):
        obs = Observability()
        runtime = make_runtime(obs=obs)
        with runtime:
            incr(runtime.new(0))
        (event,) = obs.tracer.of_kind("closure.run")
        assert event.fields["closure"] == "obs_test.incr"
        assert event.fields["core"] == 0
        assert event.fields["cycles"] > 0
        assert event.fields["end_time"] >= event.ts

    def test_trace_false_records_metrics_only(self):
        obs = Observability(trace=False)
        runtime = make_runtime(obs=obs)
        with runtime:
            incr(runtime.new(0))
        assert obs.registry.value("orthrus_closures_total") == 1.0
        assert len(obs.tracer) == 0
