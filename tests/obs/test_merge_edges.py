"""Merge edge cases for the registry and time-series folds.

The audit counters and exposure histograms ride the same merge
machinery the fleet rollup uses; these edges (empty snapshots, disjoint
label sets, single-stream equivalence) are exactly where a worker-count
dependence would hide.
"""

from repro.obs.exposure import EXPOSURE_METRIC, ExposureLedger
from repro.obs.metrics import MetricsRegistry, merge_snapshots
from repro.obs.timeseries import TimeSeries


def _registry_with_exposure(shard, reasons):
    registry = MetricsRegistry()
    ledger = ExposureLedger(registry=registry, subject_label="shard")
    for i, reason in enumerate(reasons):
        ledger.record(shard, reason, (i + 1) * 1e-6, i + 1)
    registry.counter(
        "orthrus_audit_violations_total", {"rule": "drift-coverage-floor"},
        help="t",
    ).inc()
    return registry


class TestMergeSnapshotEdges:
    def test_empty_snapshot_is_identity(self):
        registry = _registry_with_exposure("s0000", ["sampled-out"])
        before = registry.snapshot()
        registry.merge_snapshot(MetricsRegistry().snapshot())
        assert registry.snapshot() == before

    def test_merge_into_empty_registry_copies_everything(self):
        source = _registry_with_exposure("s0000", ["sampled-out", "stalled"])
        target = MetricsRegistry()
        target.merge_snapshot(source.snapshot())
        assert target.snapshot() == source.snapshot()

    def test_disjoint_label_sets_union(self):
        a = _registry_with_exposure("s0000", ["sampled-out"])
        b = _registry_with_exposure("s0001", ["queue-drop"])
        a.merge_snapshot(b.snapshot())
        labels = {
            (series[0]["shard"], series[0]["reason"])
            for series in (
                (labels, None) for labels, _ in a.series(EXPOSURE_METRIC)
            )
        }
        assert labels == {
            ("s0000", "sampled-out"), ("s0001", "queue-drop")
        }

    def test_overlapping_audit_counters_sum(self):
        a = _registry_with_exposure("s0000", [])
        b = _registry_with_exposure("s0000", [])
        a.merge_snapshot(b.snapshot())
        (_, child), = a.series("orthrus_audit_violations_total")
        assert child.value == 2

    def test_single_stream_equals_merged_for_exposure_family(self):
        # one registry fed every record == N per-shard registries merged
        records = [
            ("s0000", "sampled-out", 2e-6, 5),
            ("s0001", "sampled-out", 2e-6, 3),
            ("s0000", "queue-drop", 9e-6, 1),
            ("s0001", "stalled", 4e-6, 2),
        ]
        single = MetricsRegistry()
        ledger = ExposureLedger(registry=single, subject_label="shard")
        for record in records:
            ledger.record(*record)
        per_shard = {}
        for subject, reason, seconds, count in records:
            registry = per_shard.setdefault(subject, MetricsRegistry())
            ExposureLedger(registry=registry, subject_label="shard").record(
                subject, reason, seconds, count
            )
        merged = merge_snapshots(
            registry.snapshot() for _, registry in sorted(per_shard.items())
        )

        def canonical(registry):
            return sorted(
                (sorted(labels.items()), child.snapshot())
                for labels, child in registry.series(EXPOSURE_METRIC)
            )

        assert canonical(merged) == canonical(single)

    def test_merge_is_grouping_invariant(self):
        snapshots = [
            _registry_with_exposure(f"s{i:04d}", ["sampled-out"]).snapshot()
            for i in range(4)
        ]
        all_at_once = merge_snapshots(snapshots)
        pairs = merge_snapshots(
            [merge_snapshots(snapshots[:2]).snapshot(),
             merge_snapshots(snapshots[2:]).snapshot()]
        )
        assert all_at_once.snapshot() == pairs.snapshot()


def _series(samples, name="lag"):
    series = TimeSeries(name, capacity=8, reservoir=4)
    for t, value in samples:
        series.append(t, value)
    return series


class TestTimeSeriesMergeEdges:
    def test_merge_empty_into_populated_is_identity(self):
        series = _series([(0.0, 1.0), (1.0, 2.0)])
        before = series.summary()
        series.merge(_series([]))
        assert series.summary() == before

    def test_merge_populated_into_empty_copies_exact_stats(self):
        empty = _series([])
        full = _series([(0.0, 1.0), (1.0, 3.0), (2.0, 5.0)])
        empty.merge(full)
        for key in ("count", "mean", "min", "max", "last"):
            assert empty.summary()[key] == full.summary()[key]

    def test_merged_exact_stats_equal_single_stream(self):
        left = [(float(t), float(t % 5)) for t in range(0, 20, 2)]
        right = [(float(t), float(t % 7)) for t in range(1, 20, 2)]
        merged = _series(left)
        merged.merge(_series(right))
        single = _series(sorted(left + right))
        for key in ("count", "mean", "min", "max", "last"):
            assert merged.summary()[key] == single.summary()[key]
