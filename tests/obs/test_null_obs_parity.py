"""NULL_OBS guard-path parity: instrumentation must never change results.

The disabled path is the production default, so two properties are
load-bearing: (1) a run with observability attached produces bit-identical
application state and validation verdicts to the same run without it, and
(2) the disabled path allocates no per-event objects — no trace events, no
metric families — so the `if obs.enabled:` guards actually short-circuit.
"""

from repro.harness.pipeline import PipelineConfig, run_orthrus_server
from repro.harness.scenarios import memcached_scenario
from repro.obs import Observability, TimeSeriesConfig
from repro.obs.observability import NULL_OBS
from repro.obs.trace import NULL_TRACER


def run(obs=None, timeseries=None):
    config = PipelineConfig(
        app_threads=2, validation_cores=2, seed=7,
        obs=obs, timeseries=timeseries,
    )
    return run_orthrus_server(memcached_scenario(), 300, config)


class TestParity:
    def test_same_digest_with_and_without_obs(self):
        bare = run()
        instrumented = run(obs=Observability())
        assert bare.digest is not None
        assert bare.digest == instrumented.digest
        assert bare.metrics.validated == instrumented.metrics.validated
        assert bare.metrics.skipped == instrumented.metrics.skipped
        assert bare.detections == instrumented.detections

    def test_same_digest_with_full_telemetry_stack(self):
        # Recorder + SLO monitor sample the sim clock mid-run; they must
        # still be invisible to the application and the validators.
        bare = run()
        full = run(obs=Observability(), timeseries=TimeSeriesConfig())
        assert bare.digest == full.digest
        assert full.timeline is not None and full.timeline.samples_taken > 0
        assert full.slo is not None and full.slo.evaluated_objectives >= 1

    def test_disabled_run_leaves_null_obs_untouched(self):
        baseline_families = len(NULL_OBS.registry.snapshot()["metrics"])
        result = run()
        assert result.timeline is None and result.slo is None
        # The shared disabled singleton accumulated nothing: no trace
        # events and no new metric families from this run.
        assert len(NULL_TRACER) == 0
        assert len(NULL_OBS.registry.snapshot()["metrics"]) == baseline_families

    def test_timeseries_config_without_obs_stays_off(self):
        # A recorder needs a registry to sample; without obs the pipeline
        # must not half-attach one.
        result = run(timeseries=TimeSeriesConfig())
        assert result.timeline is None and result.slo is None


class TestSpanParity:
    def test_spans_on_and_off_digest_identical(self):
        # The span layer is pure recording: turning it off inside an
        # otherwise-instrumented run must not move a single verdict.
        spans_on = run(obs=Observability(spans=True))
        spans_off = run(obs=Observability(spans=False))
        assert spans_on.digest == spans_off.digest
        assert spans_on.metrics.validated == spans_off.metrics.validated
        assert spans_on.detections == spans_off.detections

    def test_spans_off_records_nothing(self):
        obs = Observability(spans=False)
        run(obs=obs)
        assert not obs.spans.enabled
        assert list(obs.spans) == []

    def test_null_obs_span_tracer_is_shared_null(self):
        from repro.obs.spans import NULL_SPANS

        assert NULL_OBS.spans is NULL_SPANS
        assert list(NULL_SPANS) == []
