"""Causal span layer: lifecycle spans, parent links, Chrome export.

The tracer is pure recording — the invariants here are structural: spans
chain causally per log seq, the ring cap drops instead of growing, the
Chrome trace-event export round-trips every field, and the NULL tracer
records nothing while answering the same API.
"""

import json

import pytest

from repro.obs import MetricsRegistry
from repro.obs.spans import (
    NULL_SPANS,
    STAGE_ORDER,
    SpanTracer,
    load_spans_chrome,
    write_spans_chrome,
)


class TestSpanTracer:
    def test_records_in_order_with_durations(self):
        tracer = SpanTracer()
        a = tracer.record("closure.run", 1, 0.0, 2.0, closure="mc.set")
        b = tracer.record("queue.wait", 1, 2.0, 5.0, closure="mc.set")
        assert a.duration == 2.0
        assert b.duration == 3.0
        assert [s.stage for s in tracer] == ["closure.run", "queue.wait"]

    def test_parent_links_chain_per_seq(self):
        tracer = SpanTracer()
        a = tracer.record("closure.run", 1, 0.0, 1.0)
        other = tracer.record("closure.run", 2, 0.0, 1.0)
        b = tracer.record("queue.wait", 1, 1.0, 2.0)
        assert a.parent_id == -1
        assert other.parent_id == -1
        assert b.parent_id == a.span_id

    def test_for_seq_and_of_stage(self):
        tracer = SpanTracer()
        tracer.record("closure.run", 1, 0.0, 1.0)
        tracer.record("closure.run", 2, 0.0, 1.0)
        tracer.record("verdict", 1, 1.0, 1.0)
        assert [s.stage for s in tracer.for_seq(1)] == ["closure.run", "verdict"]
        assert len(tracer.of_stage("closure.run")) == 2

    def test_cap_drops_but_keeps_chain_ids_advancing(self):
        tracer = SpanTracer(max_spans=2)
        tracer.record("closure.run", 1, 0.0, 1.0)
        tracer.record("queue.wait", 1, 1.0, 2.0)
        dropped = tracer.record("validate", 1, 2.0, 3.0)
        assert dropped is None
        assert tracer.dropped == 1
        assert len(list(tracer)) == 2

    def test_extra_args_survive(self):
        tracer = SpanTracer()
        span = tracer.record("validate", 1, 0.0, 1.0, core=3, level="degraded")
        assert span.args == {"core": 3, "level": "degraded"}

    def test_registry_histogram_per_stage(self):
        registry = MetricsRegistry()
        tracer = SpanTracer(registry=registry)
        tracer.record("validate", 1, 0.0, 2.0)
        tracer.record("validate", 2, 0.0, 4.0)
        tracer.record("queue.wait", 1, 0.0, 1.0)
        series = dict(
            (labels["stage"], hist)
            for labels, hist in registry.series("orthrus_span_stage_seconds")
        )
        assert series["validate"].count == 2
        assert series["validate"].sum == pytest.approx(6.0)
        assert series["queue.wait"].count == 1

    def test_null_tracer_records_nothing(self):
        span = NULL_SPANS.record("closure.run", 1, 0.0, 1.0)
        assert span is None
        assert not NULL_SPANS.enabled
        assert list(NULL_SPANS) == []
        assert NULL_SPANS.for_seq(1) == []


class TestChromeExport:
    def test_round_trip(self, tmp_path):
        tracer = SpanTracer()
        tracer.record("closure.run", 1, 0.0, 2e-6, closure="mc.set", core=0)
        tracer.record("queue.wait", 1, 2e-6, 5e-6, closure="mc.set")
        tracer.record("verdict", 1, 5e-6, 5e-6, closure="mc.set", passed=True)
        path = tmp_path / "spans.json"
        written = write_spans_chrome(tracer, str(path))
        assert written == 3
        loaded = load_spans_chrome(str(path))
        assert [s.stage for s in loaded] == ["closure.run", "queue.wait", "verdict"]
        original = list(tracer)
        for orig, back in zip(original, loaded):
            assert back.seq == orig.seq
            assert back.closure == orig.closure
            assert back.span_id == orig.span_id
            assert back.parent_id == orig.parent_id
            assert back.duration == pytest.approx(orig.duration, abs=1e-15)
        # marker spans stay zero-duration through the round trip
        assert loaded[-1].duration == pytest.approx(0.0, abs=1e-12)
        assert loaded[-1].args.get("passed") is True

    def test_is_loadable_chrome_format(self, tmp_path):
        tracer = SpanTracer()
        tracer.record("closure.run", 1, 0.0, 1e-6)
        path = tmp_path / "spans.json"
        write_spans_chrome(tracer, str(path))
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
        assert "traceEvents" in payload
        complete = [e for e in payload["traceEvents"] if e.get("ph") == "X"]
        assert complete and all("ts" in e and "dur" in e for e in complete)
        # one thread-name metadata row per stage keeps Perfetto rows ordered
        names = [
            e for e in payload["traceEvents"]
            if e.get("ph") == "M" and e.get("name") == "thread_name"
        ]
        assert names

    def test_rejects_non_chrome_file(self, tmp_path):
        path = tmp_path / "not-a-trace.json"
        path.write_text(json.dumps({"format": "orthrus-metrics/1"}))
        with pytest.raises(ValueError, match="traceEvents"):
            load_spans_chrome(str(path))

    def test_stage_order_covers_all_recorded_stages(self):
        # Every stage the drivers record must be in the canonical order
        # list, or waterfalls would render it at the end unsorted.
        for stage in (
            "closure.run", "queue.wait", "dispatch", "validate", "verdict",
            "stalled", "redispatch", "fallback", "skip", "drop",
            "arbitrate", "quarantine", "repair",
        ):
            assert stage in STAGE_ORDER
