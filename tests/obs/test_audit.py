"""Validation-plane auditor: static rules, report algebra, drift probes.

The static half must catch every contradiction class from the
nba-stats-scraper post-mortem (ROADMAP item 5) while keeping the stock
configs clean; the report fold must be associative so fleet workers can
merge findings in any grouping; and the DriftMonitor must flag
declared-vs-observed divergence exactly on the state *transition* (one
``audit.violation`` event per violated state, not per probe).
"""

import pytest

from repro.errors import ConfigurationError
from repro.harness.pipeline import PipelineConfig
from repro.obs import Observability
from repro.obs.audit import (
    AUDIT_FORMAT,
    AuditConfig,
    AuditReport,
    DRIFT_RULES,
    DriftMonitor,
    Finding,
    Severity,
    audit_fleet,
    audit_pipeline,
    component_violations,
    findings_to_violations,
    merge_findings,
    pipeline_rules,
    render_audit,
)
from repro.obs.canary import CanaryConfig
from repro.obs.slo import SloObjective
from repro.response.coordinator import ResponseConfig
from repro.runtime.degradation import FaultToleranceConfig
from repro.validation.watchdog import WatchdogConfig


def _finding(rule="r", severity=Severity.ERROR, subject="s", message="m"):
    return Finding(rule=rule, severity=severity, subject=subject, message=message)


class TestFindingAlgebra:
    def test_round_trip(self):
        finding = Finding(
            rule="watchdog-exceeds-slo",
            severity=Severity.WARN,
            subject="watchdog",
            message="too slow",
            remediation="lower it",
            observed=(("deadline", 0.005), ("slo_ceiling", 0.002)),
        )
        assert Finding.from_dict(finding.to_dict()) == finding

    def test_merge_dedupes_by_identity(self):
        a = _finding(message="same")
        b = _finding(message="same")
        c = _finding(message="different")
        assert merge_findings([a], [b, c]) == merge_findings([a, b], [c])
        assert len(merge_findings([a], [b, c])) == 2

    def test_merge_sorts_most_severe_first(self):
        warn = _finding(rule="b", severity=Severity.WARN)
        error = _finding(rule="z", severity=Severity.ERROR)
        merged = merge_findings([warn, error])
        assert [f.severity for f in merged] == [Severity.ERROR, Severity.WARN]

    def test_merge_is_grouping_invariant(self):
        findings = [
            _finding(rule=r, subject=s)
            for r in ("a", "b", "c")
            for s in ("x", "y")
        ]
        one_pass = merge_findings(findings)
        pairwise = merge_findings(
            merge_findings(findings[:2]),
            merge_findings(findings[2:5]),
            merge_findings(findings[5:]),
        )
        assert one_pass == pairwise

    def test_error_findings_become_violation_records(self):
        records = findings_to_violations(
            [_finding(rule="no-hosts"), _finding(severity=Severity.WARN)]
        )
        assert records == [
            {"code": "no-hosts", "subject": "s", "message": "m"}
        ]


class TestAuditReport:
    def test_json_round_trip(self):
        report = AuditReport(targets=["pipeline"])
        report.findings.append(_finding())
        report.rules_run = 9
        payload = report.to_json()
        assert payload["format"] == AUDIT_FORMAT
        assert payload["summary"] == {"errors": 1, "warnings": 0, "ok": False}
        back = AuditReport.from_json(payload)
        assert back.findings == report.findings
        assert back.rules_run == 9 and back.targets == ["pipeline"]

    def test_from_json_rejects_foreign_formats(self):
        with pytest.raises(ValueError, match="orthrus-audit/1"):
            AuditReport.from_json({"format": "orthrus-metrics/1"})

    def test_merge_accumulates_rules_and_targets(self):
        a = AuditReport(findings=[_finding(rule="x")], rules_run=9,
                        targets=["pipeline"])
        b = AuditReport(findings=[_finding(rule="y")], rules_run=12,
                        targets=["fleet"])
        a.merge(b)
        assert a.rules_run == 21
        assert a.targets == ["pipeline", "fleet"]
        assert {f.rule for f in a.findings} == {"x", "y"}

    def test_render_names_rules_and_remediation(self):
        report = AuditReport(targets=["pipeline"], rules_run=1)
        report.findings.append(
            Finding(rule="validator-pool-empty", severity=Severity.ERROR,
                    subject="pipeline", message="no cores",
                    remediation="set validation_cores >= 1")
        )
        text = report.render()
        assert "validator-pool-empty" in text
        assert "fix: set validation_cores >= 1" in text

    def test_render_clean_report(self):
        text = render_audit(audit_pipeline(PipelineConfig()).to_json())
        assert "no contradictions found" in text
        assert "0 error(s)" in text


class TestPipelineRules:
    def test_defaults_are_clean(self):
        report = audit_pipeline(PipelineConfig())
        assert report.ok and not report.warnings
        assert report.rules_run == len(pipeline_rules())

    def test_empty_validator_pool(self):
        report = audit_pipeline(PipelineConfig(validation_cores=0))
        assert [f.rule for f in report.errors] == ["validator-pool-empty"]

    def test_unknown_sampler_target(self):
        config = PipelineConfig(sampler_targets=("nba.stats.fetch",))
        report = audit_pipeline(config, known_closures={"cache.get"})
        assert [f.rule for f in report.errors] == ["sampler-target-unknown"]
        assert report.errors[0].subject == "nba.stats.fetch"

    def test_registered_sampler_target_passes(self):
        config = PipelineConfig(sampler_targets=("cache.get",))
        report = audit_pipeline(config, known_closures={"cache.get"})
        assert report.ok

    def test_inverted_canary_deadline(self):
        config = PipelineConfig(canary=CanaryConfig(period=1e-3, deadline=1e-4))
        report = audit_pipeline(config)
        assert "canary-deadline-inverted" in {f.rule for f in report.errors}

    def test_watchdog_deadline_vs_slo_ceiling(self):
        config = PipelineConfig(
            fault_tolerance=FaultToleranceConfig(
                watchdog=WatchdogConfig(deadline=5e-3)
            ),
            slos=(SloObjective.parse("validation_lag_p95 p95 <= 200us"),),
        )
        report = audit_pipeline(config)
        assert "watchdog-exceeds-slo" in {f.rule for f in report.errors}

    def test_unknown_overflow_policy(self):
        config = PipelineConfig(
            fault_tolerance=FaultToleranceConfig(overflow_policy="drop-newest")
        )
        report = audit_pipeline(config)
        assert "overflow-policy-unknown" in {f.rule for f in report.errors}

    def test_unguarded_block_producer_warns(self):
        config = PipelineConfig(
            fault_tolerance=FaultToleranceConfig(
                overflow_policy="block-producer", degradation=None
            )
        )
        report = audit_pipeline(config)
        assert report.ok  # WARN, not ERROR
        assert [f.rule for f in report.warnings] == ["overflow-policy-unguarded"]

    def test_invalid_queue_capacity(self):
        config = PipelineConfig(
            fault_tolerance=FaultToleranceConfig(queue_capacity=0)
        )
        report = audit_pipeline(config)
        assert "queue-capacity-invalid" in {f.rule for f in report.errors}

    def test_component_config_violations_surface(self):
        config = PipelineConfig(audit=AuditConfig(cadence=-1.0))
        report = audit_pipeline(config)
        errors = [f for f in report.errors
                  if f.rule == "component-config-invalid"]
        assert errors and errors[0].subject == "audit"

    def test_single_core_quarantine_warns(self):
        config = PipelineConfig(validation_cores=1, response=ResponseConfig())
        report = audit_pipeline(config)
        assert "quarantine-empties-pool" in {f.rule for f in report.warnings}


class TestFleetRules:
    def test_defaults_are_clean(self):
        from repro.fleet.topology import FleetConfig

        assert audit_fleet(FleetConfig()).ok

    def test_structural_contradictions(self):
        from repro.fleet.topology import FleetConfig

        config = FleetConfig(
            hosts=1, shards=4, cores_per_host=8,
            validators_per_shard=4, app_cores_per_shard=4,
            quarantined=((0, 4), (0, 5), (0, 6), (0, 7)),
            watchdog_deadline=5e-3, slo_window=2e-3,
        )
        rules = {f.rule for f in audit_fleet(config).errors}
        assert {"shards-exceed-cores", "validator-pool-quarantined",
                "watchdog-exceeds-slo"} <= rules

    def test_scalar_error_does_not_hide_structural_rules(self):
        # A watchdog/SLO contradiction is not a shape error: the
        # quarantined-pool rule must still run and fire.
        from repro.fleet.topology import FleetConfig

        config = FleetConfig(
            hosts=1, shards=1, cores_per_host=4,
            validators_per_shard=2, app_cores_per_shard=2,
            quarantined=((0, 2), (0, 3)),
            watchdog_deadline=5e-3, slo_window=2e-3,
        )
        rules = {f.rule for f in audit_fleet(config).errors}
        assert "validator-pool-quarantined" in rules

    def test_shape_error_skips_structural_pass(self):
        from repro.fleet.topology import FleetConfig

        report = audit_fleet(FleetConfig(hosts=0))
        assert "no-hosts" in {f.rule for f in report.errors}
        # scalar rules only — the topology was never materialized
        assert report.rules_run == 10

    def test_rule_ids_double_as_fleet_config_error_codes(self):
        from repro.fleet.topology import FleetConfig, FleetConfigError, FleetTopology

        config = FleetConfig(hosts=0, shards=0)
        with pytest.raises(FleetConfigError) as exc:
            FleetTopology(config)
        codes = {v["code"] for v in exc.value.violations}
        assert {"no-hosts", "no-shards"} <= codes


class TestAuditConfig:
    def test_violations_and_validate(self):
        bad = AuditConfig(cadence=0.0, warmup_probes=-1, coverage_floor=2.0,
                          declared_pool=0, residual_probes=0)
        assert len(bad.violations()) == 5
        with pytest.raises(ConfigurationError):
            bad.validate()
        assert AuditConfig().violations() == []

    def test_component_violations_protocol(self):
        assert component_violations(AuditConfig()) == []
        assert component_violations(AuditConfig(cadence=-1)) != []
        assert component_violations(object()) == []


class _FakeMetrics:
    def __init__(self, validated=0, skipped=0, operations=0):
        self.validated = validated
        self.skipped = skipped
        self.operations = operations


class _FakeLedger:
    def __init__(self, outstanding=0, accounted=0):
        self.outstanding = outstanding
        self.accounted = accounted


class _FakeCanary:
    def __init__(self, missed=0):
        self.missed = missed


def _monitor(metrics=None, obs=None, **kwargs):
    config = kwargs.pop("config", AuditConfig(warmup_probes=0))
    return DriftMonitor(
        config,
        declared_pool=kwargs.pop("declared_pool", 2),
        coverage_floor=kwargs.pop("coverage_floor", 0.5),
        metrics=metrics if metrics is not None else _FakeMetrics(),
        obs=obs,
    )


class TestDriftMonitor:
    def test_coverage_floor_violation_and_recovery(self):
        obs = Observability()
        metrics = _FakeMetrics(validated=2, skipped=30)
        monitor = _monitor(metrics=metrics, obs=obs)
        monitor.probe(now=1.0)
        assert [f.rule for f in monitor.findings] == ["drift-coverage-floor"]
        assert len(obs.tracer.of_kind("audit.violation")) == 1
        # staying in violation emits no duplicate transition events
        monitor.probe(now=2.0)
        assert len(obs.tracer.of_kind("audit.violation")) == 1
        metrics.validated = 100
        monitor.probe(now=3.0)
        assert len(obs.tracer.of_kind("audit.recover")) == 1
        # the terminal finding persists: the incident happened
        assert monitor.findings

    def test_violation_counter_increments_on_transition(self):
        obs = Observability()
        monitor = _monitor(metrics=_FakeMetrics(validated=2, skipped=30), obs=obs)
        monitor.probe(now=1.0)
        monitor.probe(now=2.0)
        series = obs.registry.series("orthrus_audit_violations_total")
        assert len(series) == 1
        labels, child = series[0]
        assert labels == {"rule": "drift-coverage-floor"}
        assert child.value == 1
        assert monitor.violation_count == 1

    def test_validator_pool_drift(self):
        monitor = _monitor(
            metrics=_FakeMetrics(validated=20), declared_pool=4
        )
        monitor.verdict(0)
        monitor.verdict(1)
        monitor.probe(now=1.0)
        assert [f.rule for f in monitor.findings] == ["drift-validator-pool"]
        observed = dict(monitor.findings[0].observed)
        assert observed == {"declared": 4, "observed_cores": 2}

    def test_silent_pool_flags_even_with_zero_verdicts(self):
        monitor = _monitor(metrics=_FakeMetrics(operations=20), declared_pool=2)
        monitor.probe(now=1.0)
        assert "drift-validator-pool" in {f.rule for f in monitor.findings}

    def test_warmup_probes_suppress_early_flags(self):
        monitor = _monitor(
            metrics=_FakeMetrics(validated=2, skipped=30),
            config=AuditConfig(warmup_probes=2),
        )
        monitor.probe(now=1.0)
        monitor.probe(now=2.0)
        assert monitor.findings == []
        monitor.probe(now=3.0)
        assert monitor.findings

    def test_ledger_residual_needs_consecutive_stalls(self):
        monitor = _monitor(config=AuditConfig(warmup_probes=0, residual_probes=3))
        ledger = _FakeLedger(outstanding=5, accounted=10)
        monitor.attach_ledger(ledger)
        monitor.probe(now=1.0)  # establishes the settlement baseline
        monitor.probe(now=2.0)
        monitor.probe(now=3.0)
        assert monitor.findings == []
        monitor.probe(now=4.0)
        assert [f.rule for f in monitor.findings] == ["drift-ledger-residual"]

    def test_ledger_progress_resets_the_stall_counter(self):
        monitor = _monitor(config=AuditConfig(warmup_probes=0, residual_probes=2))
        ledger = _FakeLedger(outstanding=5, accounted=10)
        monitor.attach_ledger(ledger)
        monitor.probe(now=1.0)
        ledger.accounted += 1  # settlement progressed
        monitor.probe(now=2.0)
        monitor.probe(now=3.0)
        assert monitor.findings == []

    def test_canary_liveness(self):
        monitor = _monitor()
        canary = _FakeCanary(missed=0)
        monitor.attach_canary(canary)
        monitor.probe(now=1.0)
        assert monitor.findings == []
        canary.missed = 2
        monitor.probe(now=2.0)
        assert [f.rule for f in monitor.findings] == ["drift-canary-liveness"]

    def test_finalize_reports_terminal_residual(self):
        monitor = _monitor()
        monitor.attach_ledger(_FakeLedger(outstanding=3, accounted=7))
        payload = monitor.finalize(now=9.0)
        assert payload["format"] == AUDIT_FORMAT
        assert payload["targets"] == ["runtime"]
        assert payload["rules_run"] == len(DRIFT_RULES)
        assert payload["probes"] == 1
        assert "drift-ledger-residual" in {
            f["rule"] for f in payload["findings"]
        }
        assert payload["summary"]["ok"] is False

    def test_payload_carries_the_exposure_ledger(self):
        from repro.obs.exposure import ExposureLedger

        exposure = ExposureLedger()
        exposure.record("cache.get", "sampled-out", 2e-6, 3)
        monitor = DriftMonitor(
            AuditConfig(), declared_pool=2, coverage_floor=0.5,
            metrics=_FakeMetrics(), exposure=exposure,
        )
        payload = monitor.finalize(now=1.0)
        assert payload["exposure"]["entries"][0]["subject"] == "cache.get"
        rendered = render_audit(payload)
        assert "exposure windows" in rendered

    def test_disabled_obs_stays_silent(self):
        from repro.obs.observability import NULL_OBS

        families = len(NULL_OBS.registry.snapshot()["metrics"])
        monitor = _monitor(metrics=_FakeMetrics(validated=2, skipped=30))
        monitor.probe(now=1.0)
        assert monitor.findings  # the finding is still recorded
        assert len(NULL_OBS.registry.snapshot()["metrics"]) == families
