"""Time-series recorder: ring buffers, compaction, probes, artifacts."""

import math

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import (
    CounterRateProbe,
    DeltaRatioProbe,
    GaugeProbe,
    HistogramWindowProbe,
    TimeSeries,
    TimeSeriesConfig,
    TimeSeriesRecorder,
    load_timeline,
    render_sparkline,
    write_timeline_json,
)


class TestTimeSeries:
    def test_append_and_values(self):
        series = TimeSeries("lag", capacity=8)
        for i in range(4):
            series.append(float(i), float(i) * 2)
        assert series.total_samples == 4
        assert [v for _, v in series.values("mean")] == [0.0, 2.0, 4.0, 6.0]
        assert series.latest("last") == 6.0

    def test_capacity_is_never_exceeded(self):
        series = TimeSeries("lag", capacity=4)
        for i in range(1000):
            series.append(float(i), float(i))
        assert len(series) <= 4
        assert series.total_samples == 1000

    def test_compaction_preserves_aggregates(self):
        series = TimeSeries("lag", capacity=4, reservoir=64)
        values = [float(i % 17) for i in range(256)]
        for i, v in enumerate(values):
            series.append(float(i), v)
        whole = series.window(-math.inf, math.inf)
        assert whole.count == 256
        assert whole.min == min(values)
        assert whole.max == max(values)
        assert whole.sum == pytest.approx(sum(values))
        assert series.compactions > 0

    def test_compaction_covers_whole_run(self):
        # Buckets must span the full time range after many compactions —
        # the timeline loses resolution, never coverage.
        series = TimeSeries("lag", capacity=4)
        for i in range(100):
            series.append(float(i), 1.0)
        assert series.buckets[0].t_start == 0.0
        assert series.buckets[-1].t_end == 99.0

    def test_percentiles_from_reservoir(self):
        series = TimeSeries("lag", capacity=8, reservoir=128)
        for i in range(100):
            series.append(float(i), float(i))
        whole = series.window(-math.inf, math.inf)
        assert whole.stat("p50") == pytest.approx(49.5, abs=6.0)
        assert whole.stat("p95") == pytest.approx(94.0, abs=6.0)

    def test_window_selects_overlapping_buckets(self):
        series = TimeSeries("lag", capacity=16)
        for i in range(8):
            series.append(float(i), float(i))
        window = series.window(5.0, 7.0)
        assert window.count == 3
        assert window.min == 5.0 and window.max == 7.0

    def test_round_trip_dict(self):
        series = TimeSeries("lag", capacity=8, unit="s")
        for i in range(20):
            series.append(float(i), float(i))
        restored = TimeSeries.from_dict(series.to_dict())
        assert restored.name == "lag" and restored.unit == "s"
        assert restored.total_samples == 20
        assert restored.values("mean") == series.values("mean")

    def test_validation(self):
        with pytest.raises(ValueError):
            TimeSeries("x", capacity=1)
        with pytest.raises(ValueError):
            TimeSeries("x", reservoir=0)
        with pytest.raises(ValueError):
            TimeSeriesConfig(cadence=0.0)


class TestProbes:
    def test_gauge_probe_sums_families(self):
        registry = MetricsRegistry()
        registry.gauge("orthrus_log_store_depth").set(3)
        registry.gauge("orthrus_queue_depth", {"queue": "0"}).set(2)
        probe = GaugeProbe("orthrus_log_store_depth", "orthrus_queue_depth")
        assert probe.sample(registry, 1.0, 1.0) == 5.0

    def test_counter_rate_probe_differences(self):
        registry = MetricsRegistry()
        counter = registry.counter("orthrus_checksum_verifications_total")
        probe = CounterRateProbe("orthrus_checksum_verifications_total")
        assert probe.sample(registry, 0.0, 1.0) is None  # primes the delta
        counter.inc(10)
        assert probe.sample(registry, 1.0, 1.0) == pytest.approx(10.0)
        counter.inc(5)
        assert probe.sample(registry, 3.0, 2.0) == pytest.approx(2.5)

    def test_delta_ratio_probe_matches_label_subset(self):
        registry = MetricsRegistry()
        skip = registry.counter(
            "orthrus_sampler_decisions_total",
            {"decision": "skip", "closure": "kv.get"},
        )
        keep = registry.counter(
            "orthrus_sampler_decisions_total",
            {"decision": "validate", "closure": "kv.get"},
        )
        probe = DeltaRatioProbe(
            "orthrus_sampler_decisions_total", {"decision": "skip"}
        )
        assert probe.sample(registry, 0.0, 1.0) is None  # primes the deltas
        keep.inc(3)
        skip.inc(1)
        assert probe.sample(registry, 1.0, 1.0) == pytest.approx(0.25)
        # No new decisions in the interval → no point (None), not 0.
        assert probe.sample(registry, 2.0, 1.0) is None

    def test_histogram_window_probe_interval_percentile(self):
        registry = MetricsRegistry()
        hist = registry.histogram("orthrus_validation_latency_seconds")
        probe = HistogramWindowProbe("orthrus_validation_latency_seconds", "p95")
        for _ in range(10):
            hist.record(1e-6)
        first = probe.sample(registry, 1.0, 1.0)
        assert first is not None and first > 0
        # Only the *new* observations count in the next interval.
        for _ in range(10):
            hist.record(1e-3)
        second = probe.sample(registry, 2.0, 1.0)
        assert second > first
        assert probe.sample(registry, 3.0, 1.0) is None


class TestRecorder:
    def make(self, cadence=1.0):
        registry = MetricsRegistry()
        registry.gauge("depth").set_function(lambda: 7.0)
        recorder = TimeSeriesRecorder(
            registry, TimeSeriesConfig(cadence=cadence, capacity=8)
        )
        recorder.add_series("depth", GaugeProbe("depth"), unit="logs")
        return recorder

    def test_cadence_gates_samples(self):
        recorder = self.make(cadence=1.0)
        assert recorder.sample(0.0) is True
        assert recorder.sample(0.5) is False  # too soon
        assert recorder.sample(1.0) is True
        assert recorder.sample(1.2, force=True) is True
        assert recorder.samples_taken == 3

    def test_listeners_fire_per_accepted_sample(self):
        recorder = self.make(cadence=1.0)
        seen = []
        recorder.listeners.append(lambda rec, now: seen.append(now))
        recorder.sample(0.0)
        recorder.sample(0.1)
        recorder.sample(2.0)
        assert seen == [0.0, 2.0]

    def test_artifact_round_trip(self, tmp_path):
        recorder = self.make(cadence=1.0)
        for t in range(5):
            recorder.sample(float(t))
        path = str(tmp_path / "timeline.json")
        write_timeline_json(recorder, path)
        series = load_timeline(path)
        assert set(series) == {"depth"}
        assert series["depth"].total_samples == 5
        assert series["depth"].latest() == 7.0

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ValueError):
            load_timeline(str(path))

    def test_duplicate_series_rejected(self):
        recorder = self.make()
        with pytest.raises(ValueError):
            recorder.add_series("depth", GaugeProbe("depth"))


class TestSparkline:
    def test_fixed_width(self):
        assert len(render_sparkline([], width=10)) == 10
        assert len(render_sparkline([1.0] * 200, width=30)) == 30

    def test_spikes_survive_downsampling(self):
        values = [0.0] * 100
        values[37] = 9.0
        assert "█" in render_sparkline(values, width=10)

    def test_constant_short_series_still_fixed_width(self):
        # Regression: a constant series shorter than the width used to
        # return len(values) glyphs instead of padding to the fixed width,
        # breaking column alignment in the timeline renderer.
        assert len(render_sparkline([5.0] * 3, width=20)) == 20
        assert len(render_sparkline([0.0], width=12)) == 12

    def test_variable_short_series_still_fixed_width(self):
        assert len(render_sparkline([1.0, 2.0, 3.0], width=20)) == 20
