"""Exposure-window ledger: accounting, registry mirroring, merge algebra.

Coverage must be a measured artifact: every skip/drop/shed/stall folds
into per-subject/per-reason totals, mirrors into the
``orthrus_exposure_seconds`` histogram family in O(1), and merges
associatively so fleet rollups are worker-count invariant.
"""

from repro.obs.exposure import EXPOSURE_METRIC, ExposureLedger, render_exposure
from repro.obs.metrics import MetricsRegistry


def _sample_ledger():
    ledger = ExposureLedger()
    ledger.record("cache.get", "sampled-out", 2e-6, 10)
    ledger.record("cache.get", "queue-drop", 5e-6, 2)
    ledger.record("cache.set", "sampled-out", 2e-6, 4)
    return ledger


class TestAccounting:
    def test_totals_fold_count_times_seconds(self):
        ledger = ExposureLedger()
        ledger.record("k", "sampled-out", 3.0, 4)
        ledger.record("k", "sampled-out", 1.0)
        assert ledger.totals[("k", "sampled-out")] == [5, 13.0]
        assert ledger.logs == 5
        assert ledger.seconds == 13.0

    def test_nonpositive_counts_and_negative_windows_ignored(self):
        ledger = ExposureLedger()
        ledger.record("k", "r", 1.0, 0)
        ledger.record("k", "r", 1.0, -2)
        ledger.record("k", "r", -0.5, 3)
        assert ledger.totals == {}

    def test_zero_second_windows_still_count_logs(self):
        # checksum-only shedding can have a zero *residual* window but
        # the log was still not fully validated
        ledger = ExposureLedger()
        ledger.record("k", "checksum-only", 0.0, 2)
        assert ledger.logs == 2 and ledger.seconds == 0.0

    def test_by_reason_and_by_subject_rollups(self):
        ledger = _sample_ledger()
        by_reason = ledger.by_reason()
        assert by_reason["sampled-out"]["logs"] == 14
        assert abs(by_reason["sampled-out"]["seconds"] - 28e-6) < 1e-15
        assert by_reason["queue-drop"]["logs"] == 2
        by_subject = ledger.by_subject()
        assert by_subject["cache.get"]["logs"] == 12
        assert by_subject["cache.set"]["logs"] == 4

    def test_worst_ranks_by_seconds_then_name(self):
        ledger = _sample_ledger()
        worst = ledger.worst(n=1)
        assert worst[0]["subject"] == "cache.get"
        tied = ExposureLedger()
        tied.record("b", "r", 1.0)
        tied.record("a", "r", 1.0)
        assert [w["subject"] for w in tied.worst()] == ["a", "b"]

    def test_summary_shape(self):
        summary = _sample_ledger().summary()
        assert set(summary) == {"logs", "seconds", "by_reason", "worst"}
        assert summary["logs"] == 16


class TestSerializationAndMerge:
    def test_dict_round_trip(self):
        ledger = _sample_ledger()
        back = ExposureLedger.from_dict(ledger.to_dict())
        assert back.totals == ledger.totals
        assert back.to_dict() == ledger.to_dict()

    def test_merge_is_grouping_invariant(self):
        parts = []
        for salt in range(4):
            part = ExposureLedger()
            part.record(f"shard-{salt % 2:04d}", "sampled-out", 1e-6, salt + 1)
            part.record("shard-0000", "queue-drop", 2e-6, 1)
            parts.append(part)
        left = ExposureLedger()
        for part in parts:
            left.merge(part)
        right = ExposureLedger().merge(parts[2]).merge(parts[3])
        right_then_left = (
            ExposureLedger().merge(parts[0]).merge(parts[1]).merge(right)
        )
        assert left.totals == right_then_left.totals

    def test_render_lists_reasons_and_worst_subject(self):
        text = render_exposure(_sample_ledger().to_dict())
        assert "16 log(s)" in text
        assert "sampled-out" in text and "queue-drop" in text
        assert "worst closure cache.get" in text


class TestRegistryMirror:
    def test_record_mirrors_into_histogram_family(self):
        registry = MetricsRegistry()
        ledger = ExposureLedger(registry=registry, subject_label="closure")
        ledger.record("cache.get", "sampled-out", 2e-6, 10)
        series = registry.series(EXPOSURE_METRIC)
        assert len(series) == 1
        labels, child = series[0]
        assert labels == {"closure": "cache.get", "reason": "sampled-out"}
        assert child.count == 10
        assert abs(child.sum - 20e-6) < 1e-18

    def test_extra_labels_ride_along(self):
        registry = MetricsRegistry()
        ledger = ExposureLedger(
            registry=registry, subject_label="shard",
            extra_labels={"host": "h000"},
        )
        ledger.record("s0000", "queue-drop", 1e-6)
        labels, _ = registry.series(EXPOSURE_METRIC)[0]
        assert labels == {
            "shard": "s0000", "reason": "queue-drop", "host": "h000"
        }

    def test_from_registry_reconstructs_totals(self):
        registry = MetricsRegistry()
        ledger = ExposureLedger(registry=registry)
        ledger.record("cache.get", "sampled-out", 2e-6, 10)
        ledger.record("cache.set", "deadline", 7e-6, 3)
        back = ExposureLedger.from_registry(registry, subject_label="closure")
        assert back.logs == ledger.logs
        assert abs(back.seconds - ledger.seconds) < 1e-15
        assert set(back.totals) == set(ledger.totals)

    def test_from_registry_after_snapshot_merge_matches_direct_fold(self):
        # the fleet path: workers mirror into per-shard registries, the
        # parent merges snapshots; reconstruction must equal a direct
        # single-ledger fold of the same records
        shards = []
        for shard in range(3):
            registry = MetricsRegistry()
            ledger = ExposureLedger(registry=registry, subject_label="shard")
            ledger.record(f"s{shard:04d}", "sampled-out", 1e-6, shard + 1)
            ledger.record("s0000", "stalled", 4e-6, 2)
            shards.append((registry, ledger))
        merged = MetricsRegistry()
        for registry, _ in shards:
            merged.merge_snapshot(registry.snapshot())
        reconstructed = ExposureLedger.from_registry(merged, subject_label="shard")
        direct = ExposureLedger()
        for _, ledger in shards:
            direct.merge(ledger)
        assert reconstructed.totals.keys() == direct.totals.keys()
        for key, (logs, seconds) in direct.totals.items():
            assert reconstructed.totals[key][0] == logs
            assert abs(reconstructed.totals[key][1] - seconds) < 1e-15
