"""Exporter formats: JSON-lines traces, Prometheus text, console tables."""

import json
import math

from repro.obs.exporters import (
    console_summary,
    load_metrics_json,
    read_trace_jsonl,
    to_prometheus,
    write_metrics_json,
    write_trace_jsonl,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


def make_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter(
        "orthrus_validations_total", {"closure": "kv.get", "caller": "handle"},
        help="validations",
    ).inc(12)
    registry.gauge("orthrus_queue_depth", {"queue": "0"}).set(3)
    hist = registry.histogram("orthrus_queue_delay_seconds", help="delay")
    for value in (1e-6, 2e-6, 5e-4):
        hist.record(value)
    return registry


class TestTraceJsonl:
    def test_round_trip(self, tmp_path):
        tracer = Tracer()
        tracer.emit("closure.run", ts=0.5, closure="kv.get", seq=1)
        tracer.emit("queue.push", ts=0.6, queue=0, seq=1, depth=1)
        path = str(tmp_path / "trace.jsonl")
        assert write_trace_jsonl(tracer, path) == 2
        events = read_trace_jsonl(path)
        assert [e["kind"] for e in events] == ["closure.run", "queue.push"]
        assert events[0]["closure"] == "kv.get"

    def test_non_finite_fields_become_null(self, tmp_path):
        tracer = Tracer()
        tracer.emit("reclaim.batch", ts=0.0, watermark=math.inf, reclaimed=0)
        path = str(tmp_path / "trace.jsonl")
        write_trace_jsonl(tracer, path)
        events = read_trace_jsonl(path)
        assert events[0]["watermark"] is None

    def test_dropped_marker_appended(self, tmp_path):
        tracer = Tracer(max_events=1)
        tracer.emit("a", ts=0.0)
        tracer.emit("b", ts=0.0)
        path = str(tmp_path / "trace.jsonl")
        assert write_trace_jsonl(tracer, path) == 1
        events = read_trace_jsonl(path)
        assert events[-1] == {"kind": "trace.dropped", "count": 1}


class TestMetricsJson:
    def test_round_trip_file(self, tmp_path):
        registry = make_registry()
        path = str(tmp_path / "metrics.json")
        write_metrics_json(registry, path)
        snapshot = load_metrics_json(path)
        assert snapshot["format"] == "orthrus-metrics/1"
        restored = MetricsRegistry.from_snapshot(snapshot)
        assert restored.value(
            "orthrus_validations_total", {"closure": "kv.get", "caller": "handle"}
        ) == 12.0

    def test_output_is_valid_json(self, tmp_path):
        path = str(tmp_path / "metrics.json")
        write_metrics_json(make_registry(), path)
        with open(path, encoding="utf-8") as fh:
            json.load(fh)  # must not raise


class TestPrometheus:
    def test_counter_and_gauge_lines(self):
        text = to_prometheus(make_registry())
        assert "# TYPE orthrus_validations_total counter" in text
        assert (
            'orthrus_validations_total{caller="handle",closure="kv.get"} 12.0'
            in text
        )
        assert 'orthrus_queue_depth{queue="0"} 3.0' in text

    def test_histogram_exposition(self):
        text = to_prometheus(make_registry())
        assert "# TYPE orthrus_queue_delay_seconds histogram" in text
        assert 'orthrus_queue_delay_seconds_bucket{le="+Inf"} 3' in text
        assert "orthrus_queue_delay_seconds_count 3" in text
        assert "orthrus_queue_delay_seconds_sum" in text

    def test_bucket_counts_cumulative(self):
        text = to_prometheus(make_registry())
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("orthrus_queue_delay_seconds_bucket")
        ]
        assert counts == sorted(counts)
        assert counts[-1] == 3

    def test_accepts_saved_snapshot_dict(self):
        registry = make_registry()
        assert to_prometheus(registry.snapshot()) == to_prometheus(registry)

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("x_total", {"name": 'a"b\\c'}).inc()
        text = to_prometheus(registry)
        assert r'x_total{name="a\"b\\c"} 1.0' in text

    def test_label_newlines_escaped(self):
        registry = MetricsRegistry()
        registry.counter("x_total", {"name": "line1\nline2"}).inc()
        text = to_prometheus(registry)
        assert r'x_total{name="line1\nline2"} 1.0' in text
        # The exposition must stay one-sample-per-line.
        assert "line1\nline2" not in text

    def test_help_text_escaped(self):
        registry = MetricsRegistry()
        registry.counter("x_total", help="multi\nline \\help").inc()
        text = to_prometheus(registry)
        assert r"# HELP x_total multi\nline \\help" in text

    def test_type_emitted_once_per_family_across_children(self):
        registry = MetricsRegistry()
        for queue in ("0", "1", "2"):
            registry.gauge("orthrus_queue_depth", {"queue": queue}).set(1)
        text = to_prometheus(registry)
        assert text.count("# TYPE orthrus_queue_depth gauge") == 1

    def test_histogram_with_no_samples_still_announces_type(self):
        registry = MetricsRegistry()
        registry.histogram("orthrus_idle_seconds", help="never observed")
        text = to_prometheus(registry)
        assert "# TYPE orthrus_idle_seconds histogram" in text
        assert "orthrus_idle_seconds_count 0" in text
        assert 'orthrus_idle_seconds_bucket{le="+Inf"} 0' in text
        # And the snapshot round-trips the empty family intact.
        restored = to_prometheus(registry.snapshot())
        assert restored == text


class TestConsoleSummary:
    def test_table_contains_every_family(self):
        table = console_summary(make_registry())
        assert "orthrus_validations_total" in table
        assert "caller=handle, closure=kv.get" in table
        assert "count=3" in table  # histogram summarized inline

    def test_empty_registry(self):
        assert "empty" in console_summary(MetricsRegistry())

    def test_accepts_saved_snapshot_dict(self):
        registry = make_registry()
        assert console_summary(registry.snapshot()) == console_summary(registry)
