"""Queued-mode telemetry: counters, traces, and exports agree with the run.

The acceptance test for the observability layer: drive a queued-mode
workload under a partial-rate sampler and check that every view of the run
— sampler counters, runtime stats, the LatencyTracker, the trace, and the
JSON-exported snapshot — tells the same story.
"""

import json

from repro.closures.annotation import closure
from repro.closures.context import ops
from repro.machine.cpu import Machine
from repro.obs import MetricsRegistry, Observability
from repro.runtime.orthrus import OrthrusRuntime
from repro.runtime.sampling import RandomSampler, SamplerConfig


@closure(name="qtel.work")
def work(ptr, delta):
    value = ptr.load()
    ptr.store(ops().alu.add(value, delta))
    return value + delta


def run_queued_workload(n_ops=40):
    """A queued run where the sampler skips roughly half the logs."""
    sampler = RandomSampler(SamplerConfig(min_rate=0.0, increase=0.0), seed=7)
    sampler._controller.rate = 0.5
    obs = Observability()
    runtime = OrthrusRuntime(
        machine=Machine(cores_per_node=4, numa_nodes=1),
        app_cores=[0],
        validation_cores=[1],
        mode="queued",
        sampler=sampler,
        obs=obs,
    )
    with runtime:
        ptr = runtime.new(0)
        for _ in range(n_ops):
            work(ptr, 1)
        runtime.drain()
    return runtime, sampler, obs


class TestQueuedTelemetry:
    def test_sampler_counters_match_decision_metric(self):
        runtime, sampler, obs = run_queued_workload()
        registry = obs.registry
        assert 0 < sampler.skipped < 40  # the run actually exercised both paths
        assert registry.value(
            "orthrus_sampler_decisions_total", {"decision": "validate", "reason": "sampled"}
        ) == sampler.chosen
        assert registry.value(
            "orthrus_sampler_decisions_total", {"decision": "skip", "reason": "rate-limited"}
        ) == sampler.skipped
        assert registry.value("orthrus_sampler_decisions_total") == 40.0

    def test_validate_and_skip_counters_match_runtime(self):
        runtime, sampler, obs = run_queued_workload()
        registry = obs.registry
        assert registry.value("orthrus_validations_total") == runtime.validations
        assert registry.value("orthrus_validation_skips_total") == sampler.skipped
        assert runtime.validations + sampler.skipped == 40

    def test_queue_counters_balance(self):
        runtime, sampler, obs = run_queued_workload()
        registry = obs.registry
        assert registry.value("orthrus_queue_pushes_total") == 40.0
        assert registry.value("orthrus_queue_pops_total") == 40.0
        assert registry.value("orthrus_queue_depth") == 0.0  # fully drained
        delay = registry.series("orthrus_queue_delay_seconds")[0][1]
        assert delay.count == 40  # one observation per dequeue

    def test_latency_tracker_agrees_with_histogram(self):
        runtime, sampler, obs = run_queued_workload()
        family = obs.registry.get("orthrus_validation_latency_seconds")
        hist_count = sum(c.count for c in family.children.values())
        hist_sum = sum(c.sum for c in family.children.values())
        assert hist_count == runtime.validations
        assert runtime.latency._global_count == hist_count
        assert runtime.latency.global_average * hist_count == hist_sum

    def test_exported_snapshot_matches_live_registry(self):
        runtime, sampler, obs = run_queued_workload()
        # Through JSON text, exactly as --metrics-out writes it.
        restored = MetricsRegistry.from_snapshot(
            json.loads(json.dumps(obs.registry.snapshot()))
        )
        for name in (
            "orthrus_sampler_decisions_total",
            "orthrus_validations_total",
            "orthrus_validation_skips_total",
            "orthrus_queue_pushes_total",
            "orthrus_queue_delay_seconds",
        ):
            assert restored.value(name) == obs.registry.value(name), name

    def test_trace_replays_lifecycle_in_order(self):
        lifecycle = (
            "closure.run", "queue.push", "queue.pop",
            "sampler.decision", "validator.validate", "validator.skip",
        )
        runtime, sampler, obs = run_queued_workload()
        seqs = {e.fields["seq"] for e in obs.tracer.of_kind("closure.run")}
        assert len(seqs) == 40
        for seq in seqs:
            kinds = [
                e.kind for e in obs.tracer.for_seq(seq) if e.kind in lifecycle
            ]
            assert kinds[:4] == [
                "closure.run", "queue.push", "queue.pop", "sampler.decision",
            ]
            assert kinds[4] in ("validator.validate", "validator.skip")
        # Decisions in the trace agree with the counter.
        validated = sum(
            1 for e in obs.tracer.of_kind("sampler.decision") if e.fields["validate"]
        )
        assert validated == runtime.validations

    def test_deterministic_given_seed(self):
        _, _, obs_a = run_queued_workload()
        _, _, obs_b = run_queued_workload()
        assert obs_a.registry.snapshot() == obs_b.registry.snapshot()
