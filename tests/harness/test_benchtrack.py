"""Benchmark tracking: artifact schema, direction-aware comparison."""

import copy

import pytest

from repro.harness.benchtrack import (
    BENCH_FORMAT,
    BENCHES,
    artifact_filename,
    compare_artifacts,
    load_artifact,
    render_comparison,
    run_bench,
    write_artifact,
)

#: small but non-degenerate: every bench finishes in well under a minute
SCALE = 0.1


@pytest.fixture(scope="module")
def fig8_artifact():
    return run_bench("fig8_validation_latency", scale=SCALE, seed=1)


class TestArtifacts:
    def test_schema(self, fig8_artifact):
        artifact = fig8_artifact
        assert artifact["format"] == BENCH_FORMAT
        assert artifact["name"] == "fig8_validation_latency"
        assert artifact["config"]["scale"] == SCALE
        assert len(artifact["config_digest"]) == 16
        assert artifact["wall_time_s"] > 0
        assert artifact["sim"]  # non-empty metric dict
        # The Orthrus arm runs with the recorder attached, so whole-run
        # series percentiles land in the artifact.
        lag = artifact["series_percentiles"]["memcached.validation_lag_p95"]
        assert lag["p95"] > 0

    def test_digest_depends_on_config(self):
        a = run_bench("table2_coverage", scale=SCALE, seed=1)
        b = run_bench("table2_coverage", scale=SCALE, seed=2)
        assert a["config_digest"] != b["config_digest"]

    def test_write_and_load_round_trip(self, fig8_artifact, tmp_path):
        path = write_artifact(fig8_artifact, str(tmp_path))
        assert path.endswith(artifact_filename("fig8_validation_latency"))
        assert load_artifact(path) == fig8_artifact

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text('{"format": "not-a-bench"}')
        with pytest.raises(ValueError):
            load_artifact(str(path))

    def test_unknown_bench_rejected(self):
        with pytest.raises(ValueError, match="unknown benchmark"):
            run_bench("fig99")

    def test_every_bench_declares_directions(self):
        for spec in BENCHES.values():
            assert spec.directions, spec.name


class TestComparison:
    def test_identical_artifacts_compare_clean(self, fig8_artifact):
        rerun = run_bench("fig8_validation_latency", scale=SCALE, seed=1)
        # Determinism first: identical config ⇒ identical sim metrics.
        assert rerun["sim"] == fig8_artifact["sim"]
        comparison = compare_artifacts(fig8_artifact, rerun, tolerance=0.01)
        assert comparison.ok
        assert comparison.config_match
        assert all(d.status == "ok" for d in comparison.deltas)

    def test_direction_aware_verdicts(self, fig8_artifact):
        worse = copy.deepcopy(fig8_artifact)
        worse["sim"]["memcached_orthrus_val_p95_us"] *= 2.0   # lower_better ↑
        worse["sim"]["memcached_rbv_over_orthrus_ratio"] *= 2.0  # higher_better ↑
        comparison = compare_artifacts(fig8_artifact, worse, tolerance=0.25)
        by_metric = {d.metric: d.status for d in comparison.deltas}
        assert by_metric["memcached_orthrus_val_p95_us"] == "regression"
        assert by_metric["memcached_rbv_over_orthrus_ratio"] == "improvement"
        assert not comparison.ok
        assert len(comparison.regressions) == 1

    def test_stable_metrics_regress_in_both_directions(self):
        artifact = run_bench("table2_coverage", scale=SCALE, seed=1)
        drifted = copy.deepcopy(artifact)
        drifted["sim"]["profiled_sites"] *= 0.5  # STABLE: any drift is bad
        comparison = compare_artifacts(artifact, drifted, tolerance=0.25)
        by_metric = {d.metric: d.status for d in comparison.deltas}
        assert by_metric["profiled_sites"] == "regression"

    def test_within_tolerance_is_ok(self, fig8_artifact):
        nudged = copy.deepcopy(fig8_artifact)
        nudged["sim"]["memcached_orthrus_val_p95_us"] *= 1.05
        assert compare_artifacts(fig8_artifact, nudged, tolerance=0.25).ok

    def test_new_and_missing_metrics_reported_not_regressed(self, fig8_artifact):
        changed = copy.deepcopy(fig8_artifact)
        changed["sim"]["brand_new_metric"] = 1.0
        del changed["sim"]["lsmtree_orthrus_val_mean_us"]
        comparison = compare_artifacts(fig8_artifact, changed, tolerance=0.25)
        by_metric = {d.metric: d.status for d in comparison.deltas}
        assert by_metric["brand_new_metric"] == "new"
        assert by_metric["lsmtree_orthrus_val_mean_us"] == "missing"
        assert comparison.ok  # presence changes inform, they don't gate

    def test_config_mismatch_is_called_out(self, fig8_artifact):
        other = run_bench("fig8_validation_latency", scale=SCALE, seed=2)
        comparison = compare_artifacts(fig8_artifact, other, tolerance=0.25)
        assert not comparison.config_match
        assert any("config digests differ" in note for note in comparison.notes)

    def test_render_includes_verdict(self, fig8_artifact):
        comparison = compare_artifacts(fig8_artifact, fig8_artifact, tolerance=0.1)
        text = render_comparison(comparison)
        assert "verdict: no regressions" in text
        assert "fig8_validation_latency" in text
