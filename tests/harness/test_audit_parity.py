"""Runtime auditing acceptance: drift detection without digest drift.

Two contracts from DESIGN §14: (1) a chaos run with hung validators and
a mis-declared pool raises ``audit.violation`` events, lands ERROR
findings, and accumulates a nonzero exposure histogram; (2) the whole
apparatus is observational — run digests are byte-identical with
auditing on or off, on both the plain and the fault-tolerant plane.
"""

import pytest

from repro.faultinject.validator_faults import ValidatorChaosConfig
from repro.harness.pipeline import PipelineConfig, run_orthrus_server
from repro.harness.scenarios import memcached_scenario
from repro.obs import Observability
from repro.obs.audit import AUDIT_FORMAT, AuditConfig
from repro.obs.exposure import EXPOSURE_METRIC
from repro.runtime.degradation import FaultToleranceConfig
from repro.validation.watchdog import WatchdogConfig


def _run(ops=300, **overrides):
    config = PipelineConfig(app_threads=2, validation_cores=2, seed=7,
                            **overrides)
    return run_orthrus_server(memcached_scenario(), ops, config)


def _chaos_config(audit, obs=None):
    # two of two validators hang; the watchdog deadline is tight enough
    # to force re-dispatches inside a short CI run
    return dict(
        fault_tolerance=FaultToleranceConfig(
            queue_capacity=16,
            watchdog=WatchdogConfig(deadline=80e-6),
        ),
        validator_faults=ValidatorChaosConfig.parse(["hang=2"], seed=7),
        audit=audit,
        obs=obs,
    )


class TestDigestParity:
    def test_pipeline_digest_identical_with_auditing(self):
        bare = _run()
        audited = _run(audit=True)
        fully = _run(audit=AuditConfig(), obs=Observability())
        assert bare.digest is not None
        assert bare.digest == audited.digest == fully.digest
        assert bare.metrics.validated == audited.metrics.validated
        assert bare.detections == audited.detections

    def test_chaos_digest_identical_with_auditing(self):
        bare = _run(**_chaos_config(audit=None))
        audited = _run(**_chaos_config(audit=True, obs=Observability()))
        assert bare.digest == audited.digest
        assert bare.responses == audited.responses

    def test_audit_payload_absent_when_disabled(self):
        assert _run().audit is None


class TestCleanRunAudit:
    def test_clean_run_produces_ok_payload(self):
        result = _run(audit=True)
        payload = result.audit
        assert payload["format"] == AUDIT_FORMAT
        assert payload["targets"] == ["runtime"]
        assert payload["summary"]["ok"] is True
        assert payload["probes"] > 0
        # full coverage: the exposure ledger rides along but is empty
        assert payload["exposure"]["entries"] == []


class TestChaosRunAudit:
    @pytest.fixture(scope="class")
    def chaos(self):
        obs = Observability()
        result = _run(**_chaos_config(audit=True, obs=obs))
        return result, obs

    def test_hung_pool_raises_drift_violation(self, chaos):
        result, obs = chaos
        payload = result.audit
        assert payload["summary"]["ok"] is False
        rules = {f["rule"] for f in payload["findings"]}
        assert "drift-validator-pool" in rules
        events = obs.tracer.of_kind("audit.violation")
        assert events and any(
            e.fields["rule"] == "drift-validator-pool" for e in events
        )

    def test_violation_counter_recorded(self, chaos):
        _, obs = chaos
        series = obs.registry.series("orthrus_audit_violations_total")
        rules = {labels["rule"] for labels, _ in series}
        assert "drift-validator-pool" in rules
        assert all(child.value >= 1 for _, child in series)

    def test_exposure_histogram_nonzero(self, chaos):
        result, obs = chaos
        series = obs.registry.series(EXPOSURE_METRIC)
        assert series
        total = sum(child.count for _, child in series)
        assert total > 0
        entries = result.audit["exposure"]["entries"]
        assert sum(e["logs"] for e in entries) == total
        assert {e["reason"] for e in entries} <= {
            "sampled-out", "deadline", "evicted-oldest", "coverage-shed",
            "checksum-only", "stalled", "redispatch",
        }
