"""Profiler on/off parity: wall-clock measurement never moves a digest.

The self-profiler reads ``perf_counter_ns`` — the one clock that differs
between any two runs — so the load-bearing property is that nothing it
observes feeds back into simulation state.  These tests run the same
seeded workload with profiling off, on, and sampling-on through the
library runtime (plain orthrus driver) AND the chaos driver, and require
byte-identical digests and verdict counts every time.
"""

from repro.harness.chaos import run_chaos_server
from repro.harness.pipeline import (
    PipelineConfig,
    run_orthrus_server,
    run_rbv_server,
    run_vanilla_server,
)
from repro.harness.scenarios import memcached_scenario
from repro.obs import NULL_PROFILER, PROFILE_FORMAT, ProfileConfig, active
from repro.runtime.degradation import FaultToleranceConfig


def run(runner=run_orthrus_server, profile=None, **extra):
    config = PipelineConfig(
        app_threads=2, validation_cores=2, seed=7, profile=profile, **extra
    )
    return runner(memcached_scenario(), 300, config)


class TestPipelineParity:
    def test_orthrus_digest_identical_with_profiler(self):
        bare = run()
        profiled = run(profile=True)
        assert bare.digest is not None
        assert bare.digest == profiled.digest
        assert bare.metrics.validated == profiled.metrics.validated
        assert bare.metrics.skipped == profiled.metrics.skipped
        assert bare.detections == profiled.detections

    def test_orthrus_digest_identical_with_sampling_profiler(self):
        bare = run()
        sampled = run(profile=ProfileConfig(sample=True, sample_budget=0.5))
        assert bare.digest == sampled.digest
        assert sampled.profile["sampler"]["frames"] >= 0

    def test_vanilla_and_rbv_digests_unmoved(self):
        for runner in (run_vanilla_server, run_rbv_server):
            bare = run(runner=runner)
            profiled = run(runner=runner, profile=True)
            assert bare.digest == profiled.digest

    def test_profiled_run_attaches_payload(self):
        result = run(profile=True)
        payload = result.profile
        assert payload["format"] == PROFILE_FORMAT
        names = {s["name"] for s in payload["subsystems"]}
        # the canonical subsystems all saw work in a 300-op orthrus run
        assert {
            "driver.orthrus",
            "machine.execute",
            "validate.compare",
            "memory.version",
            "sim.queue.push",
            "sim.queue.pop",
            "sampler.decide",
        } <= names
        assert payload["events"] > 0
        assert payload["instructions"] > 0
        assert payload["events_per_s"] > 0

    def test_unprofiled_run_attaches_nothing(self):
        result = run()
        assert result.profile is None

    def test_ambient_profiler_restored_after_run(self):
        run(profile=True)
        assert active() is NULL_PROFILER

    def test_rbv_profile_counts_both_machines(self):
        # The RBV arm executes every op twice (primary + replica); its
        # instruction meter must see both.
        orthrus = run(profile=True)
        rbv = run(runner=run_rbv_server, profile=True)
        assert rbv.profile["instructions"] > orthrus.profile["instructions"]


class TestChaosParity:
    def test_chaos_digest_identical_with_profiler(self):
        ft = FaultToleranceConfig()
        bare = run(fault_tolerance=ft)
        profiled = run(fault_tolerance=ft, profile=True)
        assert bare.digest is not None
        assert bare.digest == profiled.digest
        assert bare.metrics.validated == profiled.metrics.validated

    def test_chaos_driver_direct_parity(self):
        config = PipelineConfig(
            app_threads=2, validation_cores=2, seed=7,
            fault_tolerance=FaultToleranceConfig(),
        )
        bare = run_chaos_server(memcached_scenario(), 300, config)
        config_on = PipelineConfig(
            app_threads=2, validation_cores=2, seed=7,
            fault_tolerance=FaultToleranceConfig(), profile=True,
        )
        profiled = run_chaos_server(memcached_scenario(), 300, config_on)
        assert bare.digest == profiled.digest
        assert profiled.profile["format"] == PROFILE_FORMAT
        assert "driver.chaos" in {
            s["name"] for s in profiled.profile["subsystems"]
        }

    def test_orthrus_delegation_labels_chaos_driver(self):
        # run_orthrus_server routes to the chaos driver when fault
        # tolerance is configured; the profile root must say so.
        result = run(fault_tolerance=FaultToleranceConfig(), profile=True)
        roots = {
            node["path"].split(";")[0] for node in result.profile["nodes"]
        }
        assert roots == {"driver.chaos"}
