"""Determinism: identical seeds reproduce identical runs bit-for-bit.

The whole evaluation methodology rests on this — golden runs must be
comparable with trial runs, and published numbers must be regenerable.
"""

from repro.harness.phoenix import run_phoenix
from repro.harness.pipeline import (
    PipelineConfig,
    run_orthrus_server,
    run_rbv_server,
    run_vanilla_server,
)
from repro.harness.scenarios import memcached_scenario, phoenix_scenario


def _snapshot(result):
    m = result.metrics
    return (
        result.responses,
        result.digest,
        m.operations,
        m.duration,
        m.validated,
        m.skipped,
        m.peak_versioned_bytes,
        m.request_latency.summary(),
        m.validation_latency.summary(),
    )


def test_vanilla_runs_identical():
    scenario = memcached_scenario(n_keys=40)
    a = run_vanilla_server(scenario, 250, PipelineConfig(seed=9))
    b = run_vanilla_server(scenario, 250, PipelineConfig(seed=9))
    assert _snapshot(a) == _snapshot(b)


def test_orthrus_runs_identical():
    scenario = memcached_scenario(n_keys=40)
    a = run_orthrus_server(scenario, 250, PipelineConfig(seed=9))
    b = run_orthrus_server(scenario, 250, PipelineConfig(seed=9))
    assert _snapshot(a) == _snapshot(b)


def test_rbv_runs_identical():
    scenario = memcached_scenario(n_keys=40)
    a = run_rbv_server(scenario, 250, PipelineConfig(seed=9))
    b = run_rbv_server(scenario, 250, PipelineConfig(seed=9))
    assert _snapshot(a) == _snapshot(b)


def test_phoenix_runs_identical():
    scenario = phoenix_scenario(words_per_chunk=150, vocabulary_size=60)
    a = run_phoenix(scenario, 1500, PipelineConfig(app_threads=4, seed=9))
    b = run_phoenix(scenario, 1500, PipelineConfig(app_threads=4, seed=9))
    assert _snapshot(a) == _snapshot(b)


def test_different_seeds_differ():
    scenario = memcached_scenario(n_keys=40)
    a = run_orthrus_server(scenario, 250, PipelineConfig(seed=9))
    b = run_orthrus_server(scenario, 250, PipelineConfig(seed=10))
    assert a.responses != b.responses
