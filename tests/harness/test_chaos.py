"""Fault-tolerant validation plane: conservation, degradation, recovery.

The acceptance contract: under injected validator faults every sampled
log is eventually validated or *explicitly* accounted (dropped with a
reason or settled by the CRC fallback) — ``logs_in == validated +
skipped + dropped + fallback`` — with zero false-positive detections;
and under 2x overload the degradation ladder reaches CHECKSUM_ONLY,
recovers to NORMAL once load subsides, and does not flap.
"""

import pytest

from repro.faultinject.validator_faults import ValidatorChaosConfig
from repro.harness.pipeline import (
    PipelineConfig,
    run_orthrus_server,
    run_vanilla_server,
)
from repro.harness.scenarios import memcached_scenario
from repro.obs.observability import Observability
from repro.obs.timeseries import TimeSeriesConfig
from repro.runtime.degradation import (
    DegradationConfig,
    DegradationLevel,
    FaultToleranceConfig,
)
from repro.runtime.sampling import AlwaysSampler
from repro.validation.watchdog import WatchdogConfig


def _conserves(report) -> bool:
    ledger = report.ledger
    return ledger["enqueued"] == (
        ledger["validated"]
        + ledger["skipped"]
        + ledger["dropped"]
        + ledger["fallback"]
    )


class TestCleanChaosPlane:
    """With no faults armed, the fault-tolerant plane is just Orthrus."""

    @pytest.fixture(scope="class")
    def runs(self):
        scenario = memcached_scenario(n_keys=40)
        vanilla = run_vanilla_server(scenario, 200, PipelineConfig(seed=2))
        chaos = run_orthrus_server(
            scenario,
            200,
            PipelineConfig(seed=2, fault_tolerance=FaultToleranceConfig()),
        )
        return vanilla, chaos

    def test_functional_agreement_with_vanilla(self, runs):
        vanilla, chaos = runs
        assert not chaos.crashed
        assert chaos.responses == vanilla.responses
        assert chaos.digest == vanilla.digest

    def test_conserved_with_no_drops(self, runs):
        _, chaos = runs
        assert chaos.ft.conserved
        assert _conserves(chaos.ft)
        assert chaos.ft.ledger["dropped"] == 0
        assert chaos.ft.ledger["fallback"] == 0

    def test_no_degradation_no_detections(self, runs):
        _, chaos = runs
        assert chaos.ft.peak_level == "normal"
        assert chaos.detections == 0


class TestConservationUnderValidatorFaults:
    """25% of validator cores crash + 25% hang: nothing silently stranded."""

    @pytest.fixture(scope="class")
    def result(self):
        scenario = memcached_scenario(n_keys=40)
        config = PipelineConfig(
            seed=2,
            validation_cores=4,
            sampler=AlwaysSampler(),
            fault_tolerance=FaultToleranceConfig(
                watchdog=WatchdogConfig(deadline=80e-6),
                check_interval=10e-6,
            ),
            validator_faults=ValidatorChaosConfig.parse(
                ["crash=0.25", "hang=0.25"], seed=5
            ),
        )
        return run_orthrus_server(scenario, 300, config)

    def test_run_completes(self, result):
        assert not result.crashed
        assert result.metrics.operations == 300

    def test_every_log_accounted(self, result):
        assert result.ft.conserved
        assert _conserves(result.ft)
        assert result.ft.ledger["outstanding"] == 0

    def test_faults_were_actually_armed(self, result):
        armed = {k: len(v) for k, v in result.ft.faulted_cores.items()}
        assert armed == {"crash": 1, "hang": 1}

    def test_stranded_logs_redispatched(self, result):
        # The crash and the hang each strand a dispatched log; the
        # watchdog must time them out and re-dispatch to healthy cores.
        assert result.ft.timeouts > 0
        assert result.ft.redispatches > 0

    def test_zero_false_positives(self, result):
        assert result.detections == 0

    def test_chaos_digest_present(self, result):
        assert result.ft.chaos_digest is not None

    def test_validator_faults_alone_select_chaos_driver(self):
        # validator_faults without an explicit FaultToleranceConfig must
        # still route to the fault-tolerant driver.
        scenario = memcached_scenario(n_keys=30)
        config = PipelineConfig(
            seed=3,
            validation_cores=4,
            validator_faults=ValidatorChaosConfig.parse(["crash=1"], seed=1),
        )
        result = run_orthrus_server(scenario, 100, config)
        assert result.ft is not None
        assert result.ft.conserved


class TestOffenderQuarantine:
    def test_verdict_loss_core_is_quarantined(self):
        # A verdict-loss core does the work, loses every verdict, and eats
        # deadline after deadline — the watchdog must feed it to quarantine.
        scenario = memcached_scenario(n_keys=40)
        config = PipelineConfig(
            seed=2,
            validation_cores=4,
            sampler=AlwaysSampler(),
            fault_tolerance=FaultToleranceConfig(
                watchdog=WatchdogConfig(deadline=80e-6, offender_threshold=2),
                check_interval=10e-6,
            ),
            validator_faults=ValidatorChaosConfig.parse(
                ["verdict-loss=1"], seed=7
            ),
        )
        result = run_orthrus_server(scenario, 300, config)
        assert not result.crashed
        (victim_core,) = result.ft.faulted_cores["verdict-loss"]
        assert victim_core in result.ft.quarantined_validators
        assert result.ft.conserved
        assert result.detections == 0


class TestTotalValidationPlaneDeath:
    def test_all_validators_crashed_still_conserves(self):
        # Every validator dies: the sweep must settle the backlog via the
        # CRC fallback so producers (and the run) are never deadlocked.
        scenario = memcached_scenario(n_keys=30)
        config = PipelineConfig(
            seed=4,
            validation_cores=2,
            sampler=AlwaysSampler(),
            fault_tolerance=FaultToleranceConfig(check_interval=10e-6),
            validator_faults=ValidatorChaosConfig.parse(["crash=2"], seed=3),
        )
        result = run_orthrus_server(scenario, 150, config)
        assert not result.crashed
        assert result.metrics.operations == 150
        assert result.ft.conserved
        assert result.ft.ledger["fallback"] > 0
        assert result.detections == 0

    def test_block_producer_policy_never_deadlocks(self):
        scenario = memcached_scenario(n_keys=30)
        config = PipelineConfig(
            seed=4,
            app_threads=4,
            validation_cores=1,
            sampler=AlwaysSampler(),
            fault_tolerance=FaultToleranceConfig(
                queue_capacity=8,
                overflow_policy="block-producer",
                degradation=None,
            ),
        )
        result = run_orthrus_server(scenario, 200, config)
        assert not result.crashed
        assert result.metrics.operations == 200
        assert result.ft.conserved
        # Backpressure, not shedding: no capacity evictions happened.
        assert "capacity" not in result.ft.queue_drops
        assert "evicted-oldest" not in result.ft.queue_drops


class TestOverloadDegradationLadder:
    """4 app threads vs 1 validator at full sampling: sustained overload."""

    @pytest.fixture(scope="class")
    def result(self):
        scenario = memcached_scenario(n_keys=40)
        config = PipelineConfig(
            seed=3,
            app_threads=4,
            validation_cores=1,
            sampler=AlwaysSampler(),
            obs=Observability(),
            timeseries=TimeSeriesConfig(cadence=10e-6),
            fault_tolerance=FaultToleranceConfig(
                queue_capacity=16,
                overflow_policy="drop-oldest",
                degradation=DegradationConfig(
                    escalate_after=1, recover_after=12
                ),
                check_interval=25e-6,
            ),
        )
        return run_orthrus_server(scenario, 400, config)

    def test_reaches_checksum_only(self, result):
        assert result.ft.peak_level == "checksum-only"

    def test_recovers_to_normal(self, result):
        assert result.ft.terminal_level == "normal"

    def test_no_flapping(self, result):
        # The ladder must walk monotonically up, then monotonically down —
        # hysteresis forbids oscillation within one overload episode.
        levels = [DegradationLevel.NORMAL] + [
            DegradationLevel[t["to"].upper().replace("-", "_")]
            for t in result.ft.degradation["transitions"]
        ]
        peak_at = levels.index(max(levels))
        rising, falling = levels[: peak_at + 1], levels[peak_at:]
        assert rising == sorted(rising)
        assert falling == sorted(falling, reverse=True)

    def test_overload_is_explicitly_accounted(self, result):
        assert result.ft.conserved
        assert _conserves(result.ft)
        assert result.ft.ledger["drop_reasons"].get("evicted-oldest", 0) > 0
        assert result.ft.ledger["fallback"] > 0
        assert result.detections == 0

    def test_transitions_in_trace_events(self, result):
        obs = result.runtime.obs
        moves = [
            (e.fields["frm"], e.fields["to"])
            for e in obs.tracer.events
            if e.kind == "degradation.transition"
        ]
        expected = [
            (t["from"], t["to"])
            for t in result.ft.degradation["transitions"]
        ]
        assert moves == expected
        assert ("degraded", "checksum-only") in moves

    def test_degradation_level_in_timeline(self, result):
        series = result.timeline.series("degradation_level")
        peaks = [bucket.max for bucket in series.buckets]
        assert max(peaks) == float(DegradationLevel.CHECKSUM_ONLY)
        # the tail of the run is back at NORMAL
        assert peaks[-1] == float(DegradationLevel.NORMAL)


class TestChaosDeterminism:
    def _snapshot(self, result):
        m = result.metrics
        return (
            result.responses,
            result.digest,
            m.operations,
            m.duration,
            m.validated,
            m.skipped,
            result.ft.summary(),
        )

    def _config(self):
        return PipelineConfig(
            seed=6,
            validation_cores=4,
            sampler=AlwaysSampler(),
            fault_tolerance=FaultToleranceConfig(
                watchdog=WatchdogConfig(deadline=80e-6),
                check_interval=10e-6,
            ),
            validator_faults=ValidatorChaosConfig.parse(
                ["crash=0.25", "slowdown=0.25"], seed=11
            ),
        )

    def test_chaos_runs_identical(self):
        scenario = memcached_scenario(n_keys=40)
        a = run_orthrus_server(scenario, 250, self._config())
        b = run_orthrus_server(scenario, 250, self._config())
        assert self._snapshot(a) == self._snapshot(b)

    def test_equal_digests_mean_equal_plans(self):
        config_a, config_b = self._config(), self._config()
        assert (
            config_a.validator_faults.digest()
            == config_b.validator_faults.digest()
        )
        assert config_a.validator_faults.plan([4, 5, 6, 7]) == (
            config_b.validator_faults.plan([4, 5, 6, 7])
        )
