"""Bench self-profiling: artifact breakdown + regression attribution.

``orthrus-bench/1`` artifacts now carry a per-subsystem wall-time
breakdown (``profile``), and ``compare_artifacts`` attributes a
throughput regression to the subsystem whose share of wall time moved
most — the acceptance scenario for the profiling PR: inflate one
subsystem synthetically and bench-compare must *name* it.
"""

import copy

import pytest

from repro.harness.benchtrack import (
    compare_artifacts,
    render_comparison,
    run_bench,
)
from repro.obs import PROFILE_FORMAT

SCALE = 0.1


@pytest.fixture(scope="module")
def fig6_artifact():
    return run_bench("fig6_performance", scale=SCALE, seed=1)


def inflate(artifact: dict, subsystem: str, factor: float) -> dict:
    """Synthetically slow one subsystem: scale its node times and stretch
    the wall clock to match, like a real single-subsystem regression."""
    slowed = copy.deepcopy(artifact)
    profile = slowed["profile"]
    added_ns = 0
    for node in profile["nodes"]:
        if node["path"].split(";")[-1] == subsystem:
            extra = int(node["total_ns"] * (factor - 1.0))
            node["total_ns"] += extra
            node["self_ns"] += extra
            added_ns += extra
    for entry in profile["subsystems"]:
        if entry["name"] == subsystem:
            entry["self_ns"] = int(entry["self_ns"] * factor)
    new_wall = profile["wall_s"] + added_ns / 1e9
    for entry in profile["subsystems"]:
        entry["share"] = entry["self_ns"] / (new_wall * 1e9)
    profile["wall_s"] = new_wall
    return slowed


class TestBenchProfileArtifact:
    def test_artifact_carries_profile_breakdown(self, fig6_artifact):
        profile = fig6_artifact["profile"]
        assert profile["format"] == PROFILE_FORMAT
        names = {s["name"] for s in profile["subsystems"]}
        assert "bench.fig6_performance" in names
        assert "machine.execute" in names
        assert "validate.compare" in names
        assert profile["events"] > 0
        assert profile["wall_s"] > 0
        assert fig6_artifact["wall_time_s"] == pytest.approx(
            profile["wall_s"], rel=0.25
        )

    def test_profile_never_feeds_config_digest(self, fig6_artifact):
        rerun = run_bench("fig6_performance", scale=SCALE, seed=1)
        # wall times differ run to run; the identity digest must not
        assert rerun["config_digest"] == fig6_artifact["config_digest"]
        assert rerun["sim"] == fig6_artifact["sim"]


class TestRegressionAttribution:
    def test_self_compare_has_no_loud_attribution(self, fig6_artifact):
        comparison = compare_artifacts(
            fig6_artifact, fig6_artifact, tolerance=0.1
        )
        assert comparison.ok
        text = render_comparison(comparison)
        assert "profile attribution" not in text

    def test_synthetic_slowdown_names_the_subsystem(self, fig6_artifact):
        slowed = inflate(fig6_artifact, "validate.compare", factor=20.0)
        # ...and the visible symptom: the tracked overhead metric doubles
        slowed["sim"]["memcached_orthrus_overhead"] *= 4.0
        comparison = compare_artifacts(fig6_artifact, slowed, tolerance=0.25)
        assert not comparison.ok
        assert comparison.profile_shift
        assert comparison.profile_shift[0]["name"] == "validate.compare"
        assert comparison.profile_shift[0]["delta"] > 0
        text = render_comparison(comparison)
        assert "profile attribution: validate.compare" in text

    def test_large_share_move_is_reported_even_without_regression(
        self, fig6_artifact
    ):
        # No metric regressed, but >=5pp of wall time moved: say so.
        shifted = inflate(fig6_artifact, "validate.compare", factor=20.0)
        comparison = compare_artifacts(fig6_artifact, shifted, tolerance=0.25)
        assert comparison.ok
        top = comparison.profile_shift[0]
        assert abs(top["delta"]) >= 0.05
        assert "profile attribution" in render_comparison(comparison)

    def test_artifacts_without_profiles_compare_quietly(self, fig6_artifact):
        legacy_a = {k: v for k, v in fig6_artifact.items() if k != "profile"}
        legacy_b = copy.deepcopy(legacy_a)
        comparison = compare_artifacts(legacy_a, legacy_b, tolerance=0.1)
        assert comparison.ok
        assert comparison.profile_shift == []
        assert "profile attribution" not in render_comparison(comparison)
