"""Scenario-definition tests."""

import pytest

from repro.harness.scenarios import (
    BatchScenario,
    ServerScenario,
    all_server_scenarios,
    lsmtree_scenario,
    masstree_scenario,
    memcached_scenario,
    phoenix_scenario,
)
from repro.machine.cpu import Machine
from repro.runtime.orthrus import OrthrusRuntime


@pytest.fixture
def runtime():
    machine = Machine(cores_per_node=4, numa_nodes=1)
    return OrthrusRuntime(machine=machine, app_cores=[0], validation_cores=[1])


class TestServerScenarios:
    def test_all_scenarios_build_and_serve(self, runtime):
        for scenario in all_server_scenarios():
            machine = Machine(cores_per_node=4, numa_nodes=1)
            rt = OrthrusRuntime(machine=machine, app_cores=[0], validation_cores=[1])
            server = scenario.build(rt)
            scenario.setup(server)
            for op in scenario.make_ops(20, seed=1):
                server.handle(op)
            assert isinstance(server.state_digest(), int)

    def test_ops_deterministic_per_seed(self):
        scenario = memcached_scenario()
        assert scenario.make_ops(50, 3) == scenario.make_ops(50, 3)
        assert scenario.make_ops(50, 3) != scenario.make_ops(50, 4)

    def test_externalizing_closures_declared(self):
        assert "mc.get" in memcached_scenario().externalizing
        assert "mt.scan" in masstree_scenario().externalizing
        assert "lsm.get" in lsmtree_scenario().externalizing

    def test_control_functions_declared(self):
        for scenario in all_server_scenarios():
            assert scenario.control_functions
            assert all(".control." in fn for fn in scenario.control_functions)


class TestBatchScenario:
    def test_phoenix_chunks_cover_words(self):
        scenario = phoenix_scenario(words_per_chunk=100)
        chunks = scenario.make_chunks(1000, seed=2)
        assert sum(len(c.split()) for c in chunks) == 1000

    def test_phoenix_builds_job(self, runtime):
        scenario = phoenix_scenario(words_per_chunk=100, vocabulary_size=50)
        job = scenario.build(runtime)
        result = job.run(scenario.make_chunks(300, seed=2))
        assert sum(result.values()) == 300
