"""Dynamic validator scaling in the timing harness (§3.5)."""

from repro.harness.pipeline import PipelineConfig, run_orthrus_server
from repro.harness.scenarios import masstree_scenario, memcached_scenario


def test_dynamic_scaling_matches_static_results():
    scenario = memcached_scenario(n_keys=50)
    static = run_orthrus_server(
        scenario, 400, PipelineConfig(app_threads=2, validation_cores=2, seed=3)
    )
    dynamic = run_orthrus_server(
        scenario, 400,
        PipelineConfig(app_threads=2, validation_cores=2, seed=3,
                       dynamic_scaling=True),
    )
    assert dynamic.responses == static.responses
    assert dynamic.digest == static.digest
    assert dynamic.detections == static.detections == 0


def test_dynamic_scaling_adds_capacity_under_pressure():
    scenario = masstree_scenario(n_keys=80)
    frozen_one = run_orthrus_server(
        scenario, 800, PipelineConfig(app_threads=4, validation_cores=1, seed=3)
    )
    dynamic = run_orthrus_server(
        scenario, 800,
        PipelineConfig(app_threads=4, validation_cores=4, seed=3,
                       dynamic_scaling=True),
    )
    assert dynamic.metrics.validated >= frozen_one.metrics.validated
    assert (
        dynamic.metrics.validation_latency.mean
        <= frozen_one.metrics.validation_latency.mean
    )


def test_dynamic_scaling_never_exceeds_core_budget():
    scenario = memcached_scenario(n_keys=50)
    result = run_orthrus_server(
        scenario, 300,
        PipelineConfig(app_threads=2, validation_cores=3, seed=3,
                       dynamic_scaling=True),
    )
    # All logs accounted for, none lost by the spawning machinery.
    assert result.metrics.validated + result.metrics.skipped == 300
