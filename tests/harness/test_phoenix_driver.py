"""Phoenix batch-driver tests."""

import pytest

from repro.harness.phoenix import run_phoenix
from repro.harness.pipeline import PipelineConfig
from repro.harness.scenarios import phoenix_scenario
from repro.machine.faults import Fault, FaultKind
from repro.machine.units import Unit
from repro.workloads.wordcount import WordCountCorpus

N_WORDS = 6400
SCEN_KW = dict(words_per_chunk=800, vocabulary_size=100)


@pytest.fixture(scope="module")
def runs():
    scenario = phoenix_scenario(**SCEN_KW)
    return {
        variant: run_phoenix(
            scenario, N_WORDS, PipelineConfig(app_threads=4, seed=2), variant=variant
        )
        for variant in ("vanilla", "orthrus", "rbv")
    }


class TestFunctional:
    def test_all_variants_compute_reference_counts(self, runs):
        reference = WordCountCorpus(n_words=N_WORDS, seed=2, **SCEN_KW).reference_counts()
        for variant, result in runs.items():
            assert result.responses[0] == reference, variant

    def test_clean_runs_have_no_detections(self, runs):
        assert runs["orthrus"].detections == 0
        assert runs["rbv"].rbv_detections == 0

    def test_operations_count_tasks(self, runs):
        chunks = (N_WORDS + SCEN_KW["words_per_chunk"] - 1) // SCEN_KW["words_per_chunk"]
        assert runs["orthrus"].metrics.operations == chunks + 8  # maps + reduces


class TestTimingShape:
    def test_orthrus_overhead_tiny(self, runs):
        ratio = runs["orthrus"].metrics.duration / runs["vanilla"].metrics.duration
        assert 1.0 <= ratio < 1.10  # paper: <2%

    def test_rbv_substantially_slower(self, runs):
        ratio = runs["rbv"].metrics.duration / runs["vanilla"].metrics.duration
        assert ratio > 1.3  # paper: ~2x (51% throughput drop)

    def test_orthrus_validation_latency_below_rbv(self, runs):
        assert (
            runs["orthrus"].metrics.validation_latency.mean
            < runs["rbv"].metrics.validation_latency.mean
        )

    def test_phoenix_memory_overhead_small(self, runs):
        # Big batches, few versions: the paper reports 2.6%.
        assert runs["orthrus"].metrics.memory_overhead < 0.25


class TestFaults:
    def test_fp_fault_detected(self):
        scenario = phoenix_scenario(**SCEN_KW)
        config = PipelineConfig(app_threads=4, seed=2)
        config.deferred_faults = (
            (0, Fault(unit=Unit.FPU, kind=FaultKind.BITFLIP, bit=52)),
        )
        result = run_phoenix(scenario, N_WORDS, config, variant="orthrus")
        assert result.detections > 0

    def test_crashing_fault_is_fail_stop(self):
        scenario = phoenix_scenario(**SCEN_KW)
        config = PipelineConfig(app_threads=4, seed=2)
        # Corrupt the partition index into an unusable value.
        from repro.machine.instruction import Site

        config.deferred_faults = (
            (0, Fault(unit=Unit.ALU, kind=FaultKind.BITFLIP, bit=62,
                      site=Site("phx.map_task", "mod", 0))),
        )
        result = run_phoenix(scenario, N_WORDS, config, variant="orthrus")
        assert result.crashed

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            run_phoenix(phoenix_scenario(), 100, PipelineConfig(), variant="hybrid")
