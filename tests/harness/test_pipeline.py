"""Timing-driver tests: vanilla/Orthrus/RBV over the server scenarios."""

import pytest

from repro.harness.pipeline import (
    PipelineConfig,
    run_orthrus_server,
    run_rbv_server,
    run_vanilla_server,
)
from repro.harness.scenarios import lsmtree_scenario, memcached_scenario
from repro.machine.faults import Fault, FaultKind
from repro.machine.instruction import Site
from repro.machine.units import Unit
from repro.runtime.sampling import AlwaysSampler
from repro.sim.metrics import slowdown

N_OPS = 400


@pytest.fixture(scope="module")
def runs():
    scenario = memcached_scenario(n_keys=60)
    return {
        "vanilla": run_vanilla_server(scenario, N_OPS, PipelineConfig(seed=1)),
        "orthrus": run_orthrus_server(scenario, N_OPS, PipelineConfig(seed=1)),
        "rbv": run_rbv_server(scenario, N_OPS, PipelineConfig(seed=1)),
    }


class TestFunctionalAgreement:
    def test_all_variants_complete_all_ops(self, runs):
        for result in runs.values():
            assert result.metrics.operations == N_OPS
            assert not result.crashed

    def test_all_variants_same_responses(self, runs):
        assert runs["vanilla"].responses == runs["orthrus"].responses
        assert runs["vanilla"].responses == runs["rbv"].responses

    def test_all_variants_same_final_state(self, runs):
        assert runs["vanilla"].digest == runs["orthrus"].digest == runs["rbv"].digest

    def test_clean_runs_have_no_detections(self, runs):
        assert runs["orthrus"].detections == 0
        assert runs["rbv"].rbv_detections == 0


class TestPerformanceShape:
    def test_orthrus_overhead_small(self, runs):
        overhead = slowdown(
            runs["vanilla"].metrics.throughput, runs["orthrus"].metrics.throughput
        )
        assert 0.0 < overhead < 0.10  # paper: 2-6%

    def test_rbv_much_slower(self, runs):
        overhead = slowdown(
            runs["vanilla"].metrics.throughput, runs["rbv"].metrics.throughput
        )
        assert overhead > 0.5  # paper: ~2x

    def test_orthrus_validation_latency_far_below_rbv(self, runs):
        orthrus_lat = runs["orthrus"].metrics.validation_latency.mean
        rbv_lat = runs["rbv"].metrics.validation_latency.mean
        assert orthrus_lat * 50 < rbv_lat  # 2-3 orders in the paper

    def test_rbv_tail_latency_worse(self, runs):
        assert (
            runs["rbv"].metrics.request_latency.p95
            > runs["orthrus"].metrics.request_latency.p95
        )

    def test_orthrus_memory_overhead_positive_and_bounded(self, runs):
        overhead = runs["orthrus"].metrics.memory_overhead
        assert 0.0 < overhead < 2.0


class TestOrthrusPipelineMechanics:
    def test_all_logs_validated_at_full_capacity(self):
        scenario = memcached_scenario(n_keys=40)
        config = PipelineConfig(seed=2, sampler=AlwaysSampler())
        result = run_orthrus_server(scenario, 200, config)
        assert result.metrics.validated == 200
        assert result.metrics.skipped == 0

    def test_fault_detected_in_pipeline(self):
        scenario = memcached_scenario(n_keys=40)
        config = PipelineConfig(seed=2)
        config.deferred_faults = (
            (0, Fault(unit=Unit.ALU, kind=FaultKind.BITFLIP, bit=3,
                      site=Site("mc.set", "hash64", 0))),
        )
        result = run_orthrus_server(scenario, 200, config)
        assert result.detections > 0

    def test_deferred_fault_spares_setup(self):
        # LSMTree preloads nothing, but Masstree-style setup must run on
        # healthy silicon; use lsmtree with a put-site fault to confirm the
        # run itself is affected while setup survives.
        scenario = lsmtree_scenario(n_keys=40)
        config = PipelineConfig(seed=2)
        config.deferred_faults = (
            (0, Fault(unit=Unit.FPU, kind=FaultKind.BITFLIP, bit=62)),
        )
        result = run_orthrus_server(scenario, 150, config)
        assert result.detections > 0 or result.crashed

    def test_safe_mode_increases_get_latency(self):
        scenario = memcached_scenario(n_keys=40)
        relaxed = run_orthrus_server(scenario, 300, PipelineConfig(seed=2))
        strict = run_orthrus_server(
            scenario, 300, PipelineConfig(seed=2, safe_mode=True)
        )
        assert (
            strict.metrics.request_latency.mean
            >= relaxed.metrics.request_latency.mean
        )
        assert strict.responses == relaxed.responses

    def test_constrained_cores_reduce_validated_fraction(self):
        scenario = memcached_scenario(n_keys=40)
        plenty = run_orthrus_server(
            scenario, 400, PipelineConfig(app_threads=4, validation_cores=4, seed=2)
        )
        scarce = run_orthrus_server(
            scenario, 400, PipelineConfig(app_threads=4, validation_cores=1, seed=2)
        )
        assert scarce.metrics.validated <= plenty.metrics.validated

    def test_memory_budget_trigger_activates_sampling(self):
        scenario = lsmtree_scenario(n_keys=60)
        tight = run_orthrus_server(
            scenario,
            300,
            PipelineConfig(seed=2, validation_cores=1, memory_budget_bytes=2000),
        )
        loose = run_orthrus_server(
            scenario,
            300,
            PipelineConfig(seed=2, validation_cores=1, memory_budget_bytes=1e9),
        )
        assert tight.metrics.skipped >= loose.metrics.skipped


class TestRbvMechanics:
    def test_rbv_detects_control_path_fault(self):
        scenario = memcached_scenario(n_keys=40)
        config = PipelineConfig(seed=2)
        config.deferred_faults = (
            (0, Fault(unit=Unit.ALU, kind=FaultKind.BITFLIP, bit=0,
                      site=Site("mc.control.dispatch", "eq", 1))),
        )
        result = run_rbv_server(scenario, 200, config)
        assert result.rbv_detections > 0 or result.crashed

    def test_rbv_validation_counts(self, runs):
        assert runs["rbv"].metrics.validated == N_OPS
