"""Consistency between the ops API and the static-analysis opcode table.

If someone adds an instruction to the simulated machine without teaching
the compiler pass about it, unit tagging (and therefore sampler priority,
§3.5) silently degrades.  This test pins the two surfaces together.
"""

import inspect

from repro.closures.analysis import OP_UNITS
from repro.machine.core import _Alu, _Cache, _Fpu, _Simd
from repro.machine.units import Unit

_EXPECTED_UNIT = {
    _Alu: Unit.ALU,
    _Fpu: Unit.FPU,
    _Simd: Unit.SIMD,
    _Cache: Unit.CACHE,
}


def _public_ops(cls):
    return [
        name
        for name, member in inspect.getmembers(cls, predicate=inspect.isfunction)
        if not name.startswith("_")
    ]


def test_every_ops_method_has_a_unit_classification():
    for cls, unit in _EXPECTED_UNIT.items():
        for name in _public_ops(cls):
            assert name in OP_UNITS, f"{cls.__name__}.{name} missing from OP_UNITS"
            assert OP_UNITS[name] is unit, (
                f"{cls.__name__}.{name} classified as {OP_UNITS[name]}, "
                f"expected {unit}"
            )


def test_no_stale_entries_in_op_table():
    known = {
        name for cls in _EXPECTED_UNIT for name in _public_ops(cls)
    }
    stale = set(OP_UNITS) - known
    assert not stale, f"OP_UNITS entries without a machine op: {stale}"
