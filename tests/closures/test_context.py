"""Execution-context semantics: APP vs VAL, logging, syscalls, checksums."""

import pytest

from repro.closures.context import ExecutionContext, current, ops, syscall
from repro.closures.log import ClosureLog
from repro.detection import DetectionEvent
from repro.errors import ChecksumMismatch, NoActiveContext
from repro.machine.core import Core
from repro.memory.checksum import checksum_of
from repro.memory.heap import VersionedHeap
from repro.memory.pointer import OrthrusPtr


@pytest.fixture
def heap():
    return VersionedHeap()


@pytest.fixture
def core():
    return Core(0)


def app_ctx(core, heap, seq=1, **kwargs):
    log = ClosureLog(seq=seq, closure_name="op", caller="test")
    return ExecutionContext(ExecutionContext.APP, core, heap, log, **kwargs), log


class TestContextStack:
    def test_no_context_by_default(self):
        assert current() is None

    def test_ops_outside_context_raises(self):
        with pytest.raises(NoActiveContext):
            ops()

    def test_context_visible_inside_with(self, core, heap):
        ctx, _ = app_ctx(core, heap)
        with ctx:
            assert current() is ctx
            assert ops() is core
        assert current() is None

    def test_context_pops_on_exception(self, core, heap):
        ctx, _ = app_ctx(core, heap)
        with pytest.raises(RuntimeError):
            with ctx:
                raise RuntimeError("boom")
        assert current() is None

    def test_invalid_mode_rejected(self, core, heap):
        with pytest.raises(ValueError):
            ExecutionContext("bogus", core, heap, ClosureLog(1, "op", "t"))


class TestAppMode:
    def test_allocate_logs_output(self, core, heap):
        ctx, log = app_ctx(core, heap)
        with ctx:
            ptr = ctx.allocate("value")
        assert ptr.obj_id in log.allocated
        assert len(log.output_versions) == 1

    def test_load_pins_input_version(self, core, heap):
        obj = heap.allocate("original")
        pinned = heap.latest(obj).version_id
        ctx, log = app_ctx(core, heap)
        with ctx:
            assert ctx.load(obj) == "original"
        assert log.inputs[obj] == pinned

    def test_input_pin_is_first_access(self, core, heap):
        obj = heap.allocate("v0")
        first = heap.latest(obj).version_id
        ctx, log = app_ctx(core, heap)
        with ctx:
            ctx.load(obj)
            ctx.store(obj, "v1")
            ctx.load(obj)
        assert log.inputs[obj] == first

    def test_store_creates_version_and_logs(self, core, heap):
        obj = heap.allocate("v0")
        ctx, log = app_ctx(core, heap)
        with ctx:
            ctx.store(obj, "v1")
        assert heap.latest(obj).value == "v1"
        assert len(log.output_versions) == 1

    def test_closure_sees_own_writes(self, core, heap):
        obj = heap.allocate("v0")
        ctx, _ = app_ctx(core, heap)
        with ctx:
            ctx.store(obj, "v1")
            assert ctx.load(obj) == "v1"

    def test_delete_logged(self, core, heap):
        obj = heap.allocate("x")
        ctx, log = app_ctx(core, heap)
        with ctx:
            ctx.delete(obj)
        assert obj in log.deletes

    def test_trace_attached_on_exit(self, core, heap):
        ctx, log = app_ctx(core, heap)
        with ctx:
            core.alu.add(1, 2)
        assert log.trace is not None
        assert log.trace.total_instructions == 1


class TestChecksumVerification:
    def test_clean_object_passes(self, core, heap):
        obj = heap.allocate("clean")
        ctx, _ = app_ctx(core, heap)
        with ctx:
            ctx.load(obj)  # must not raise

    def test_corrupted_transfer_detected(self, core, heap):
        # Simulates Figure 3: payload corrupted in the control path while
        # the header CRC still matches the original payload.
        original_crc = checksum_of("original")
        obj = heap.allocate("corrupted", checksum_override=original_crc)
        ctx, _ = app_ctx(core, heap)
        with pytest.raises(ChecksumMismatch):
            with ctx:
                ctx.load(obj)

    def test_detector_callback_instead_of_raise(self, core, heap):
        events: list[DetectionEvent] = []
        obj = heap.allocate("bad", checksum_override=checksum_of("good"))
        ctx, _ = app_ctx(core, heap, detector=events.append)
        with ctx:
            ctx.load(obj)
        assert len(events) == 1
        assert events[0].kind == "checksum"

    def test_verification_only_on_first_load(self, core, heap):
        events: list[DetectionEvent] = []
        obj = heap.allocate("bad", checksum_override=checksum_of("good"))
        ctx, _ = app_ctx(core, heap, detector=events.append)
        with ctx:
            ctx.load(obj)
            ctx.load(obj)
        assert len(events) == 1

    def test_verification_can_be_disabled(self, core, heap):
        obj = heap.allocate("bad", checksum_override=checksum_of("good"))
        ctx, _ = app_ctx(core, heap, verify_checksums=False)
        with ctx:
            ctx.load(obj)  # must not raise

    def test_allocation_inside_closure_not_probed(self, core, heap):
        ctx, _ = app_ctx(core, heap)
        with ctx:
            ptr = ctx.allocate("fresh")
            ctx.load(ptr.obj_id)  # must not recompute/verify


class TestSyscalls:
    def test_app_records_results(self, core, heap):
        ctx, log = app_ctx(core, heap)
        with ctx:
            value = syscall("random", lambda: 0.42)
        assert value == 0.42
        assert log.syscalls == [0.42]

    def test_val_replays_without_executing(self, core, heap):
        log = ClosureLog(seq=1, closure_name="op", caller="t", syscalls=[0.42])
        ctx = ExecutionContext(ExecutionContext.VAL, core, heap, log)
        called = []
        with ctx:
            value = syscall("random", lambda: called.append(1) or 0.99)
        assert value == 0.42
        assert called == []

    def test_val_extra_syscall_returns_none(self, core, heap):
        log = ClosureLog(seq=1, closure_name="op", caller="t", syscalls=[])
        ctx = ExecutionContext(ExecutionContext.VAL, core, heap, log)
        with ctx:
            assert syscall("random", lambda: 1.0) is None


class TestValMode:
    def test_load_reads_pinned_version(self, core, heap):
        obj = heap.allocate("v0")
        pinned = heap.latest(obj).version_id
        heap.store(obj, "v1")  # app moved on after the closure
        log = ClosureLog(seq=1, closure_name="op", caller="t", inputs={obj: pinned})
        ctx = ExecutionContext(ExecutionContext.VAL, core, heap, log)
        with ctx:
            assert ctx.load(obj) == "v0"

    def test_store_goes_to_private_heap(self, core, heap):
        obj = heap.allocate("v0")
        pinned = heap.latest(obj).version_id
        log = ClosureLog(seq=1, closure_name="op", caller="t", inputs={obj: pinned})
        ctx = ExecutionContext(ExecutionContext.VAL, core, heap, log)
        with ctx:
            ctx.store(obj, "val-write")
            assert ctx.load(obj) == "val-write"
        assert heap.latest(obj).value == "v0"  # shared heap untouched

    def test_unpinned_object_uses_start_time_snapshot(self, core, heap):
        obj = heap.allocate("old")
        start = heap.latest(obj).created_at
        heap.store(obj, "new")
        log = ClosureLog(seq=1, closure_name="op", caller="t", start_time=start)
        ctx = ExecutionContext(ExecutionContext.VAL, core, heap, log)
        with ctx:
            assert ctx.load(obj) == "old"

    def test_val_allocation_is_shadow(self, core, heap):
        log = ClosureLog(seq=1, closure_name="op", caller="t")
        ctx = ExecutionContext(ExecutionContext.VAL, core, heap, log)
        with ctx:
            ptr = ctx.allocate("shadow")
        assert ptr.obj_id < 0
        assert ctx.private.writes == [(ptr.obj_id, "shadow")]


class TestCanonicalization:
    def test_new_allocation_canonicalized_by_position(self, core, heap):
        ctx, _ = app_ctx(core, heap)
        with ctx:
            a = ctx.allocate("a")
            b = ctx.allocate("b")
        assert ctx.canonicalize(a) == ("ptr:new", 0)
        assert ctx.canonicalize(b) == ("ptr:new", 1)

    def test_preexisting_object_canonicalized_by_id(self, core, heap):
        obj = heap.allocate("x")
        ptr = OrthrusPtr(heap, obj)
        ctx, _ = app_ctx(core, heap)
        assert ctx.canonicalize(ptr) == ("ptr", obj)

    def test_nested_structures(self, core, heap):
        ctx, _ = app_ctx(core, heap)
        with ctx:
            ptr = ctx.allocate("a")
        value = {"k": [ptr, 1], "t": (ptr,)}
        assert ctx.canonicalize(value) == {"k": [("ptr:new", 0), 1], "t": (("ptr:new", 0),)}

    def test_app_and_val_positions_align(self, core, heap):
        app, _ = app_ctx(core, heap)
        with app:
            app_ptr = app.allocate("x")
        val_log = ClosureLog(seq=2, closure_name="op", caller="t")
        val = ExecutionContext(ExecutionContext.VAL, Core(1), heap, val_log)
        with val:
            val_ptr = val.allocate("x")
        assert app.canonicalize(app_ptr) == val.canonicalize(val_ptr)
