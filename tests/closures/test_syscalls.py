"""Syscall record/replay wrapper tests."""

import random

from repro.closures.context import ExecutionContext
from repro.closures.log import ClosureLog
from repro.closures.syscalls import sys_randint, sys_random, sys_read, sys_time, sys_write
from repro.machine.core import Core
from repro.memory.heap import VersionedHeap


def app_ctx(syscalls=None):
    log = ClosureLog(seq=1, closure_name="op", caller="t")
    if syscalls is not None:
        log.syscalls = syscalls
    return ExecutionContext(ExecutionContext.APP, Core(0), VersionedHeap(), log), log


def val_ctx(log):
    replay = ClosureLog(
        seq=log.seq, closure_name=log.closure_name, caller=log.caller,
        syscalls=list(log.syscalls),
    )
    return ExecutionContext(ExecutionContext.VAL, Core(1), VersionedHeap(), replay)


class TestRecordReplay:
    def test_sys_random_recorded_and_replayed(self):
        rng = random.Random(5)
        ctx, log = app_ctx()
        with ctx:
            drawn = sys_random(rng)
        with val_ctx(log):
            replayed = sys_random(random.Random(999))  # different rng ignored
        assert replayed == drawn

    def test_sys_randint_bounds(self):
        ctx, log = app_ctx()
        with ctx:
            value = sys_randint(3, 9, random.Random(1))
        assert 3 <= value <= 9
        assert log.syscalls == [value]

    def test_sys_time_recorded(self):
        ctx, log = app_ctx()
        with ctx:
            stamp = sys_time()
        assert log.syscalls == [stamp]
        assert stamp > 0

    def test_sys_read_write_devices(self):
        reads = []
        ctx, log = app_ctx()
        with ctx:
            data = sys_read(lambda: reads.append(1) or b"device-bytes")
            written = sys_write(lambda: 42)
        assert data == b"device-bytes"
        assert written == 42
        assert reads == [1]
        # Replay must not touch the device again.
        with val_ctx(log):
            data2 = sys_read(lambda: reads.append(2) or b"other")
            written2 = sys_write(lambda: -1)
        assert data2 == b"device-bytes"
        assert written2 == 42
        assert reads == [1]

    def test_replay_order_is_record_order(self):
        ctx, log = app_ctx()
        with ctx:
            first = sys_random(random.Random(1))
            second = sys_random(random.Random(2))
        with val_ctx(log):
            assert sys_random(random.Random(3)) == first
            assert sys_random(random.Random(4)) == second
