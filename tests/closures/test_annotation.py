"""@closure / @user_data annotation behaviour."""

from dataclasses import dataclass

import pytest

from repro.closures.annotation import (
    CLOSURE_REGISTRY,
    USER_DATA_REGISTRY,
    closure,
    is_user_data,
    user_data,
)
from repro.closures.context import ops
from repro.errors import NoActiveContext
from repro.machine.units import Unit
from repro.runtime.orthrus import OrthrusRuntime


class TestClosureDecorator:
    def test_registered_by_qualname(self):
        @closure
        def my_operator(x):
            return x

        assert "TestClosureDecorator.test_registered_by_qualname.<locals>.my_operator" in CLOSURE_REGISTRY

    def test_explicit_name(self):
        @closure(name="custom_op")
        def fn(x):
            return x

        assert "custom_op" in CLOSURE_REGISTRY
        assert CLOSURE_REGISTRY["custom_op"].fn is fn.__wrapped__ or CLOSURE_REGISTRY["custom_op"].fn

    def test_bare_invocation_raises(self):
        @closure(name="bare_op")
        def fn(x):
            return x

        with pytest.raises(NoActiveContext):
            fn(1)

    def test_invocation_under_runtime(self):
        @closure(name="runtime_op")
        def fn(x):
            return ops().alu.add(x, 1)

        runtime = OrthrusRuntime()
        with runtime:
            assert fn(4) == 5
        assert runtime.validations == 1

    def test_nested_closure_runs_inline(self):
        @closure(name="inner_op")
        def inner(x):
            return ops().alu.add(x, 1)

        @closure(name="outer_op")
        def outer(x):
            return inner(x) + 10

        runtime = OrthrusRuntime()
        with runtime:
            assert outer(0) == 11
        # Only the outer closure produced a log/validation.
        assert runtime.validations == 1

    def test_static_unit_tagging(self):
        @closure(name="fp_op")
        def fp_op(x):
            return ops().fpu.fmul(x, 2.0)

        @closure(name="int_op")
        def int_op(x):
            return ops().alu.add(x, 1)

        assert Unit.FPU in CLOSURE_REGISTRY["fp_op"].static_units
        assert CLOSURE_REGISTRY["fp_op"].error_prone
        assert not CLOSURE_REGISTRY["int_op"].error_prone

    def test_wrapper_preserves_metadata(self):
        @closure(name="documented_op")
        def fn(x):
            """Docs."""
            return x

        assert fn.__doc__ == "Docs."
        assert fn.__name__ == "fn"

    def test_caller_recorded_in_log(self):
        captured = {}

        @closure(name="caller_probe")
        def fn():
            return None

        runtime = OrthrusRuntime()
        runtime._on_log = lambda log: captured.setdefault("caller", log.caller)

        def some_control_function():
            fn()

        with runtime:
            some_control_function()
        assert captured["caller"] == "some_control_function"


class TestUserDataDecorator:
    def test_dataclass_payload(self):
        @user_data
        @dataclass
        class Pair:
            key: str
            value: int

        pair = Pair("k", 1)
        assert pair.__orthrus_payload__() == ("k", 1)
        assert is_user_data(pair)

    def test_plain_class_payload(self):
        @user_data
        class Blob:
            def __init__(self):
                self.b = 2
                self.a = 1

        assert Blob().__orthrus_payload__() == (("a", 1), ("b", 2))

    def test_equality_via_payload(self):
        @user_data
        class Cell:
            def __init__(self, v):
                self.v = v

        assert Cell(3) == Cell(3)
        assert Cell(3) != Cell(4)
        assert hash(Cell(3)) == hash(Cell(3))

    def test_registered(self):
        @user_data
        class Registered:
            pass

        assert any(name.endswith("Registered") for name in USER_DATA_REGISTRY)
