"""Closure-log structure tests."""

from repro.closures.log import LOG_HEADER_BYTES, ClosureLog
from repro.machine.instruction import Trace
from repro.machine.units import Unit


def make_log(**kwargs):
    return ClosureLog(seq=1, closure_name="op", caller="ctl", **kwargs)


class TestUnits:
    def test_no_trace_no_units(self):
        assert make_log().units == frozenset()
        assert not make_log().error_prone

    def test_units_from_trace(self):
        trace = Trace()
        trace.unit_counts[Unit.ALU] = 3
        trace.unit_counts[Unit.FPU] = 1
        log = make_log(trace=trace)
        assert log.units == frozenset({Unit.ALU, Unit.FPU})
        assert log.error_prone

    def test_zero_count_units_excluded(self):
        trace = Trace()
        trace.unit_counts[Unit.SIMD] = 0
        trace.unit_counts[Unit.ALU] = 1
        log = make_log(trace=trace)
        assert log.units == frozenset({Unit.ALU})
        assert not log.error_prone

    def test_app_cycles(self):
        trace = Trace()
        trace.cycles = 42
        assert make_log(trace=trace).app_cycles == 42
        assert make_log().app_cycles == 0


class TestFootprint:
    def test_empty_log_is_header_only(self):
        assert make_log().approx_bytes() == LOG_HEADER_BYTES

    def test_inputs_and_outputs_grow_footprint(self):
        log = make_log(inputs={1: 10, 2: 20}, output_versions=[30, 31, 32])
        assert log.approx_bytes() == LOG_HEADER_BYTES + 16 * 5

    def test_syscall_results_counted(self):
        small = make_log(syscalls=[1.0])
        big = make_log(syscalls=["x" * 1000])
        assert big.approx_bytes() > small.approx_bytes() + 900


def test_repr_mentions_closure_and_caller():
    text = repr(make_log())
    assert "op" in text and "ctl" in text
