"""Static analysis pass: unit inference and escape analysis."""

from repro.closures.analysis import analyze_escapes, infer_units
from repro.closures.context import ops
from repro.machine.units import Unit


class TestInferUnits:
    def test_alu_only(self):
        def fn(x):
            return ops().alu.add(x, 1)

        assert infer_units(fn) == frozenset({Unit.ALU})

    def test_mixed_units(self):
        def fn(x):
            a = ops().fpu.fadd(x, 1.0)
            b = ops().simd.vdot((1,), (2,))
            return ops().alu.add(int(a), int(b))

        assert infer_units(fn) == frozenset({Unit.ALU, Unit.FPU, Unit.SIMD})

    def test_cache_ops(self):
        def fn(cell):
            return ops().cache.atomic_add(cell, 1)

        assert infer_units(fn) == frozenset({Unit.CACHE})

    def test_nested_function_scanned(self):
        def fn(x):
            def helper(y):
                return ops().fpu.fmul(y, 2.0)

            return helper(x)

        assert Unit.FPU in infer_units(fn)

    def test_no_ops_empty(self):
        def fn(x):
            return x + 1

        assert infer_units(fn) == frozenset()

    def test_non_function_is_empty(self):
        assert infer_units("not a function") == frozenset()


class TestEscapeAnalysis:
    def test_returned_allocation_escapes(self):
        def fn():
            from repro.memory.pointer import orthrus_new

            item = orthrus_new({"v": 1})
            return item

        report = analyze_escapes(fn)
        assert "item" in report.escaping

    def test_local_allocation_stays_private(self):
        def fn():
            from repro.memory.pointer import orthrus_new

            scratch = orthrus_new({"v": 1})
            value = scratch.load()
            return value["v"]

        report = analyze_escapes(fn)
        assert "scratch" in report.local
        assert "scratch" in report.private_heap_eligible

    def test_stored_into_container_escapes(self):
        def fn(table):
            from repro.memory.pointer import orthrus_new

            entry = orthrus_new({"v": 1})
            table["slot"] = entry

        report = analyze_escapes(fn)
        assert "entry" in report.escaping

    def test_passed_to_call_escapes(self):
        def fn(sink):
            from repro.memory.pointer import orthrus_new

            leaked = orthrus_new({"v": 1})
            sink(leaked)

        report = analyze_escapes(fn)
        assert "leaked" in report.escaping

    def test_no_allocations_empty_report(self):
        def fn(x):
            return x

        report = analyze_escapes(fn)
        assert not report.escaping and not report.local

    def test_unsourceable_function_is_safe(self):
        report = analyze_escapes(len)
        assert not report.escaping
