"""RBV baseline tests."""

import pytest

from repro.apps.memcached import MemcachedServer
from repro.baselines.rbv import RbvValidator
from repro.machine.cpu import Machine
from repro.machine.faults import Fault, FaultKind
from repro.machine.instruction import Site
from repro.machine.units import Unit
from repro.runtime.orthrus import OrthrusRuntime
from repro.workloads.base import Op, OpKind
from repro.workloads.cachelib import CacheLibWorkload


def make_server(fault=None):
    machine = Machine(cores_per_node=4, numa_nodes=1)
    if fault is not None:
        machine.arm(0, fault)
    runtime = OrthrusRuntime(
        machine=machine,
        app_cores=[0],
        validation_cores=[1],
        mode="external",       # RBV runs the app without Orthrus validation
        checksums=False,
        hold_versions=False,
    )
    server = MemcachedServer(runtime, n_buckets=16)
    return runtime, server


def make_pair(primary_fault=None, **kwargs):
    p_runtime, primary = make_server(primary_fault)
    r_runtime, replica = make_server(None)
    validator = RbvValidator(primary, replica, **kwargs)
    return p_runtime, r_runtime, validator


def drive(validator, n_ops=120, seed=1):
    workload = CacheLibWorkload(n_keys=30, seed=seed)
    for op in workload.ops(n_ops):
        validator.submit(op)
    validator.finish()


class TestCleanRuns:
    def test_no_false_positives(self):
        _, _, validator = make_pair()
        drive(validator)
        assert validator.detections == 0

    def test_batching_counts(self):
        _, _, validator = make_pair(batch_size=10)
        drive(validator, n_ops=100)
        assert validator.stats.batches >= 10
        assert validator.stats.requests == 100

    def test_state_checks_run(self):
        _, _, validator = make_pair(state_check_every=25)
        drive(validator, n_ops=100)
        assert validator.stats.state_checks >= 4


class TestDetection:
    def test_data_path_fault_detected(self):
        fault = Fault(unit=Unit.ALU, kind=FaultKind.BITFLIP, bit=2,
                      site=Site("mc.set", "hash64", 0))
        _, _, validator = make_pair(fault)
        drive(validator)
        assert validator.detections > 0

    def test_control_dispatch_fault_detected(self):
        # The class of faults Orthrus cannot see: the flipped comparison
        # silently serves REMOVEs as GETs on the primary, so its state
        # diverges from the replica's; RBV's re-execution catches it.
        fault = Fault(unit=Unit.ALU, kind=FaultKind.BITFLIP, bit=0,
                      site=Site("mc.control.dispatch", "eq", 1))
        _, _, validator = make_pair(fault)
        validator.submit(Op(OpKind.SET, "k", "v"))
        validator.submit(Op(OpKind.REMOVE, "k"))
        validator.finish()
        assert validator.detections > 0

    def test_control_payload_fault_detected(self):
        fault = Fault(unit=Unit.ALU, kind=FaultKind.BITFLIP, bit=100,
                      site=Site("mc.control.rx", "copy", 0))
        _, _, validator = make_pair(fault)
        drive(validator)
        assert validator.detections > 0

    def test_crash_divergence_detected(self):
        # A fault that crashes only the primary shows up as crash
        # divergence rather than silent corruption.
        fault = Fault(unit=Unit.ALU, kind=FaultKind.BITFLIP, bit=1,
                      site=Site("mc.control.parse", "copy", 0))
        _, _, validator = make_pair(fault)
        workload = CacheLibWorkload(n_keys=30, seed=1)
        crashed = False
        for op in workload.ops(60):
            try:
                validator.submit(op)
            except Exception:
                crashed = True
                break
        validator.flush()
        assert crashed or validator.detections > 0


class TestResourceAccounting:
    def test_forwarded_bytes_accumulate(self):
        _, _, validator = make_pair(
            estimate_bytes=lambda response: 128
        )
        drive(validator, n_ops=50)
        assert validator.stats.forwarded_bytes == 50 * 128
