"""Offline CPU-check baseline tests."""

from repro.baselines.offline import OfflineCpuCheck
from repro.machine.cpu import Machine
from repro.machine.faults import Fault, FaultKind
from repro.machine.instruction import Site
from repro.machine.units import Unit


def test_healthy_fleet_scans_clean():
    checker = OfflineCpuCheck(Machine(cores_per_node=4, numa_nodes=1))
    assert checker.scan().clean


def test_unitwide_fault_flagged():
    machine = Machine(cores_per_node=4, numa_nodes=1)
    machine.arm(2, Fault(unit=Unit.FPU, kind=FaultKind.BITFLIP, bit=30))
    result = OfflineCpuCheck(machine).scan()
    assert result.flagged_cores == [2]
    assert any(name.startswith("fpu") for name in result.failures[2])


def test_app_site_fault_invisible_to_battery():
    # The paper's core argument: a fault pinned to an application
    # instruction site never fires on the battery's own sites, so fleet
    # scanning cannot see it — only online validation can.
    machine = Machine(cores_per_node=4, numa_nodes=1)
    machine.arm(0, Fault(unit=Unit.ALU, kind=FaultKind.BITFLIP, bit=2,
                         site=Site("mc.set", "hash64", 0)))
    result = OfflineCpuCheck(machine).scan()
    assert result.clean


def test_scan_counter():
    checker = OfflineCpuCheck(Machine(cores_per_node=2, numa_nodes=1))
    checker.scan()
    checker.scan()
    assert checker.scans == 2
