"""Same-core replay baseline: catches transient, misses persistent (§5)."""

from repro.baselines.same_core_replay import SameCoreReplayValidator
from repro.closures.annotation import closure
from repro.closures.context import ops
from repro.machine.cpu import Machine
from repro.machine.faults import Fault, FaultKind
from repro.machine.instruction import Site
from repro.machine.units import Unit
from repro.runtime.orthrus import OrthrusRuntime


@closure(name="scr_test.square_add")
def square_add(ptr, delta):
    value = ptr.load()
    o = ops()
    # Square-and-reduce keeps the accumulator bounded (iterated squaring
    # without the modulus would grow doubly exponentially).
    result = o.alu.add(o.alu.mod(o.alu.mul(value, value), 1_000_003), delta)
    ptr.store(result)
    return result


def run_with(fault=None, n_ops=40):
    """Run the workload in queued mode, then replay every log on the APP
    core (the same-core baseline) AND validate on a different core
    (Orthrus), returning both mismatch counts."""
    machine = Machine(cores_per_node=4, numa_nodes=1)
    if fault is not None:
        machine.arm(0, fault)
    runtime = OrthrusRuntime(
        machine=machine, app_cores=[0], validation_cores=[1], mode="queued"
    )
    replayer = SameCoreReplayValidator(runtime.heap, runtime.clock)
    with runtime:
        ptr = runtime.new(3)
        for index in range(n_ops):
            square_add(ptr, index)
        logs = runtime.queues.drain()
        for log in logs:
            replayer.replay(log, machine.core(log.core_id))   # same core
        for log in logs:
            runtime.validator.validate(log, machine.core(1))  # Orthrus
    return replayer.mismatch_count, runtime.validator.mismatch_count


class TestFaultModelDistinction:
    def test_clean_run_matches_everywhere(self):
        same_core, orthrus = run_with(fault=None)
        assert same_core == 0
        assert orthrus == 0

    def test_persistent_fault_invisible_to_same_core_replay(self):
        # The paper's fault model: deterministic, core-pinned.  The replay
        # reproduces the corruption identically; Orthrus's different-core
        # validation catches every corrupted execution.
        fault = Fault(unit=Unit.ALU, kind=FaultKind.BITFLIP, bit=4,
                      site=Site("scr_test.square_add", "mul", 0))
        same_core, orthrus = run_with(fault=fault)
        assert same_core == 0          # blind
        assert orthrus > 0             # caught

    def test_transient_fault_caught_by_both(self):
        # Transient (low-recurrence) errors are what time redundancy was
        # designed for: the replay usually takes the healthy path and
        # disagrees with the corrupted original.
        fault = Fault(unit=Unit.ALU, kind=FaultKind.BITFLIP, bit=4,
                      trigger_rate=0.15,
                      site=Site("scr_test.square_add", "mul", 0))
        same_core, orthrus = run_with(fault=fault, n_ops=120)
        assert same_core > 0
        assert orthrus > 0

    def test_replay_counts(self):
        fault = Fault(unit=Unit.ALU, kind=FaultKind.BITFLIP, bit=4)
        machine = Machine(cores_per_node=4, numa_nodes=1)
        machine.arm(0, fault)
        runtime = OrthrusRuntime(
            machine=machine, app_cores=[0], validation_cores=[1], mode="queued"
        )
        replayer = SameCoreReplayValidator(runtime.heap, runtime.clock)
        with runtime:
            ptr = runtime.new(1)
            square_add(ptr, 1)
            log = runtime.queues.drain()[0]
            replayer.replay(log, machine.core(0))
        assert replayer.replayed_count == 1
