"""Queued-mode pumping with sampling: the library-level async path."""

import pytest

from repro.closures.annotation import closure
from repro.closures.context import ops
from repro.machine.cpu import Machine
from repro.machine.faults import Fault, FaultKind
from repro.machine.units import Unit
from repro.runtime.orthrus import OrthrusRuntime
from repro.runtime.sampling import AdaptiveSampler, RandomSampler, SamplerConfig


@closure(name="pump_test.work")
def work(ptr, delta):
    value = ptr.load()
    ptr.store(ops().alu.add(value, delta))
    return value + delta


def make_runtime(sampler=None, fault=None, validation_cores=None):
    machine = Machine(cores_per_node=4, numa_nodes=1)
    if fault is not None:
        machine.arm(0, fault)
    return OrthrusRuntime(
        machine=machine,
        app_cores=[0],
        validation_cores=validation_cores or [1],
        mode="queued",
        sampler=sampler,
    )


class TestPump:
    def test_pump_respects_max_logs(self):
        runtime = make_runtime()
        with runtime:
            ptr = runtime.new(0)
            for _ in range(10):
                work(ptr, 1)
            assert runtime.pump(max_logs=4) == 4
            assert runtime.queues.pending == 6
            runtime.drain()
        assert runtime.validations == 10

    def test_pump_round_robins_across_queues(self):
        # Logs land round-robin on the two queues (odd seqs on queue 0,
        # even on queue 1); the pump must interleave the queues rather than
        # drain queue 0 first and starve the other.
        runtime = make_runtime(validation_cores=[1, 2])
        with runtime:
            ptr = runtime.new(0)
            for _ in range(6):
                work(ptr, 1)
            runtime.drain()
        assert [o.log.seq for o in runtime.outcomes] == [1, 2, 3, 4, 5, 6]

    def test_partial_pump_resumes_where_it_left_off(self):
        runtime = make_runtime(validation_cores=[1, 2])
        with runtime:
            ptr = runtime.new(0)
            for _ in range(6):
                work(ptr, 1)
            assert runtime.pump(max_logs=3) == 3
            assert [o.log.seq for o in runtime.outcomes] == [1, 2, 3]
            runtime.drain()
        assert [o.log.seq for o in runtime.outcomes] == [1, 2, 3, 4, 5, 6]

    def test_sampler_skips_counted(self):
        sampler = RandomSampler(SamplerConfig(min_rate=0.0, increase=0.0), seed=1)
        sampler._controller.rate = 0.0  # force all skips
        runtime = make_runtime(sampler=sampler)
        with runtime:
            ptr = runtime.new(0)
            for _ in range(20):
                work(ptr, 1)
            runtime.drain()
        assert runtime.validations == 0
        assert sampler.skipped == 20

    def test_skipped_logs_still_close_windows(self):
        sampler = RandomSampler(SamplerConfig(min_rate=0.0, increase=0.0), seed=1)
        sampler._controller.rate = 0.0
        runtime = make_runtime(sampler=sampler)
        with runtime:
            ptr = runtime.new(0)
            for _ in range(20):
                work(ptr, 1)
            runtime.drain()
        assert runtime.reclaimer.open_windows == 0
        runtime.reclaimer.reclaim_now()
        assert runtime.heap.stale_bytes == 0

    def test_adaptive_sampler_first_execution_always_validated(self):
        sampler = AdaptiveSampler(SamplerConfig(), seed=1)
        for _ in range(100):
            sampler.observe_delay(1.0)  # crush the rate before anything runs
        runtime = make_runtime(sampler=sampler)
        with runtime:
            ptr = runtime.new(0)
            work(ptr, 1)
            runtime.drain()
        assert runtime.validations == 1  # never-validated pair rule

    def test_faulty_run_detected_despite_partial_sampling(self):
        sampler = AdaptiveSampler(
            SamplerConfig(staleness_threshold=5.0), seed=1
        )
        runtime = make_runtime(
            sampler=sampler,
            fault=Fault(unit=Unit.ALU, kind=FaultKind.BITFLIP, bit=6),
        )
        with runtime:
            ptr = runtime.new(0)
            for _ in range(30):
                work(ptr, 1)
            runtime.drain()
        # Deterministic persistent fault: any validated execution diverges.
        assert runtime.detections > 0
        assert runtime.detections == runtime.validations
