"""Degradation ladder and hysteresis tests."""

import pytest

from repro.errors import ConfigurationError
from repro.obs import Observability
from repro.runtime.degradation import (
    DegradationConfig,
    DegradationController,
    DegradationLevel,
    FaultToleranceConfig,
)
from repro.runtime.safemode import SafeModePolicy


def make_controller(**kwargs):
    defaults = dict(escalate_after=2, recover_after=3)
    defaults.update(kwargs)
    return DegradationController(DegradationConfig(**defaults))


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"queue_low_water": 0.8, "queue_high_water": 0.7},
            {"queue_high_water": 1.5},
            {"drop_rate_high": 0.0},
            {"escalate_after": 0},
            {"recover_after": 0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            DegradationConfig(**kwargs).validate()

    def test_fault_tolerance_defaults(self):
        ft = FaultToleranceConfig()
        assert ft.queue_capacity == 64
        assert ft.overflow_policy == "drop-oldest"
        assert ft.degradation is not None


class TestLadder:
    def test_starts_normal(self):
        controller = make_controller()
        assert controller.level is DegradationLevel.NORMAL
        assert not controller.coverage_only
        assert not controller.checksum_only
        assert not controller.hold_externalizing

    def test_single_hot_observation_does_not_escalate(self):
        controller = make_controller(escalate_after=2)
        controller.observe(1.0, utilization=0.9)
        assert controller.level is DegradationLevel.NORMAL

    def test_escalates_one_level_per_streak(self):
        controller = make_controller(escalate_after=2)
        for tick in range(4):
            controller.observe(float(tick), utilization=0.9)
        assert controller.level is DegradationLevel.CHECKSUM_ONLY
        assert controller.coverage_only and controller.checksum_only
        assert [t.to for t in controller.history] == [
            DegradationLevel.DEGRADED,
            DegradationLevel.CHECKSUM_ONLY,
        ]

    def test_caps_at_safe_hold(self):
        controller = make_controller(escalate_after=1)
        for tick in range(6):
            controller.observe(float(tick), drop_rate=0.5)
        assert controller.level is DegradationLevel.SAFE_HOLD
        assert controller.hold_externalizing
        assert controller.peak is DegradationLevel.SAFE_HOLD

    def test_each_signal_can_escalate(self):
        for signal in (
            {"utilization": 0.8},
            {"drop_rate": 0.1},
            {"timeout_rate": 0.3},
        ):
            controller = make_controller(escalate_after=1)
            controller.observe(0.0, **signal)
            assert controller.level is DegradationLevel.DEGRADED, signal

    def test_recovery_needs_streak(self):
        controller = make_controller(escalate_after=1, recover_after=3)
        controller.observe(0.0, utilization=0.9)
        for tick in range(2):
            controller.observe(1.0 + tick, utilization=0.0)
        assert controller.level is DegradationLevel.DEGRADED
        controller.observe(3.0, utilization=0.0)
        assert controller.level is DegradationLevel.NORMAL

    def test_hysteresis_band_blocks_flapping(self):
        """Load hovering between the water marks must not move the ladder
        in either direction, no matter how long it stays there."""
        controller = make_controller(escalate_after=1, recover_after=1)
        controller.observe(0.0, utilization=0.9)
        assert controller.level is DegradationLevel.DEGRADED
        for tick in range(20):
            controller.observe(1.0 + tick, utilization=0.5)
        assert controller.level is DegradationLevel.DEGRADED
        assert len(controller.history) == 1

    def test_band_resets_streaks(self):
        """hot, band, hot must not count as a streak of two."""
        controller = make_controller(escalate_after=2)
        controller.observe(0.0, utilization=0.9)
        controller.observe(1.0, utilization=0.5)  # band
        controller.observe(2.0, utilization=0.9)
        assert controller.level is DegradationLevel.NORMAL

    def test_cool_requires_all_signals_quiet(self):
        controller = make_controller(escalate_after=1, recover_after=1)
        controller.observe(0.0, utilization=0.9)
        # Queue drained but drops still streaming: not cool.
        controller.observe(1.0, utilization=0.0, drop_rate=0.04)
        assert controller.level is DegradationLevel.DEGRADED
        controller.observe(2.0, utilization=0.0, drop_rate=0.0)
        assert controller.level is DegradationLevel.NORMAL


class TestSafeModeWiring:
    def test_safe_hold_engages_and_releases_policy(self):
        policy = SafeModePolicy(enabled=False, externalizing=frozenset({"get"}))
        controller = DegradationController(
            DegradationConfig(escalate_after=1, recover_after=1),
            safe_mode=policy,
        )
        for tick in range(3):
            controller.observe(float(tick), timeout_rate=0.9)
        assert controller.level is DegradationLevel.SAFE_HOLD
        assert policy.enabled and policy.must_hold("get")
        controller.observe(4.0)
        assert controller.level is DegradationLevel.CHECKSUM_ONLY
        assert not policy.enabled


class TestObservability:
    def test_gauge_counter_and_trace(self):
        obs = Observability()
        controller = DegradationController(
            DegradationConfig(escalate_after=1, recover_after=1), obs=obs
        )
        controller.observe(1.0, utilization=0.9)
        controller.observe(2.0)
        ((_, gauge),) = obs.registry.series("orthrus_degradation_level")
        assert gauge.read() == 0.0  # recovered
        transitions = obs.registry.series("orthrus_degradation_transitions_total")
        assert {
            (labels["from"], labels["to"]) for labels, _ in transitions
        } == {("normal", "degraded"), ("degraded", "normal")}
        events = [
            e for e in obs.tracer.events if e.kind == "degradation.transition"
        ]
        assert [e.fields["to"] for e in events] == ["degraded", "normal"]

    def test_summary(self):
        controller = make_controller(escalate_after=1)
        controller.observe(1.0, utilization=0.9)
        summary = controller.summary()
        assert summary["level"] == "degraded"
        assert summary["peak"] == "degraded"
        assert summary["transitions"][0]["reason"].startswith("queue-utilization")
