"""SafeModePolicy edge cases and strict-mode hold/release ordering."""

import pytest

from repro.harness.pipeline import PipelineConfig, run_orthrus_server
from repro.harness.scenarios import memcached_scenario
from repro.runtime.safemode import SafeModePolicy


class TestPolicyEdgeCases:
    def test_strict_with_empty_externalizing_set_holds_nothing(self):
        policy = SafeModePolicy.strict(())
        assert policy.enabled
        assert not policy.must_hold("mc.get")
        assert not policy.must_hold("")

    def test_disabled_policy_never_holds_even_when_listed(self):
        policy = SafeModePolicy(enabled=False, externalizing=frozenset({"mc.get"}))
        assert not policy.must_hold("mc.get")
        assert not SafeModePolicy.off().must_hold("mc.get")

    def test_strict_holds_only_listed_closures(self):
        policy = SafeModePolicy.strict({"mc.get"})
        assert policy.must_hold("mc.get")
        assert not policy.must_hold("mc.set")
        assert not policy.must_hold("mc.get ")  # exact-name match only

    def test_strict_accepts_any_iterable_and_dedupes(self):
        policy = SafeModePolicy.strict(["a", "b", "a"])
        assert policy.externalizing == frozenset({"a", "b"})
        assert policy.must_hold("a") and policy.must_hold("b")


class TestStrictModeOrdering:
    def test_empty_externalizing_set_behaves_like_relaxed_mode(self):
        # With nothing externalizing, strict mode must introduce no holds
        # at all: identical responses AND identical (virtual) latency.
        relaxed = run_orthrus_server(
            memcached_scenario(n_keys=30), 200, PipelineConfig(seed=3)
        )
        stripped = memcached_scenario(n_keys=30)
        stripped.externalizing = frozenset()
        strict = run_orthrus_server(
            stripped, 200, PipelineConfig(seed=3, safe_mode=True)
        )
        assert strict.responses == relaxed.responses
        assert strict.metrics.request_latency.mean == pytest.approx(
            relaxed.metrics.request_latency.mean
        )

    def test_hold_release_ordering_monotone_in_externalizing_set(self):
        # Strict mode releases a response only after every held closure of
        # the request validates; holding *more* closures can only release
        # later.  Latency must therefore be monotone in the externalizing
        # set: {} <= {mc.get} <= all closures — with identical responses.
        # A single app thread keeps the request interleaving identical
        # across arms (holds shift virtual time, which would otherwise
        # reorder set/get races between threads).
        one = dict(seed=4, app_threads=1)
        scenario = memcached_scenario(n_keys=30)
        relaxed = run_orthrus_server(scenario, 250, PipelineConfig(**one))
        strict_gets = run_orthrus_server(
            memcached_scenario(n_keys=30),
            250,
            PipelineConfig(safe_mode=True, **one),
        )
        everything = memcached_scenario(n_keys=30)
        everything.externalizing = frozenset(
            {"mc.set", "mc.get", "mc.remove", "mc.incr"}
        )
        strict_all = run_orthrus_server(
            everything, 250, PipelineConfig(safe_mode=True, **one)
        )
        assert relaxed.responses == strict_gets.responses == strict_all.responses
        assert (
            strict_all.metrics.request_latency.mean
            >= strict_gets.metrics.request_latency.mean
            >= relaxed.metrics.request_latency.mean
        )
        # every request completed in each arm
        assert (
            relaxed.metrics.operations
            == strict_gets.metrics.operations
            == strict_all.metrics.operations
            == 250
        )
