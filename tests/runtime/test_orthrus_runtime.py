"""OrthrusRuntime façade tests: modes, policies, reclamation wiring."""

import pytest

from repro.closures.annotation import closure
from repro.closures.context import ops
from repro.errors import ConfigurationError, SdcDetected, ValidationMismatch
from repro.machine.cpu import Machine
from repro.machine.faults import Fault, FaultKind
from repro.machine.units import Unit
from repro.runtime.orthrus import OrthrusRuntime, active
from repro.runtime.safemode import SafeModePolicy


@closure(name="rt_test.incr")
def incr(ptr):
    value = ptr.load()
    ptr.store(ops().alu.add(value, 1))
    return value + 1


@closure(name="rt_test.boom")
def boom():
    raise RuntimeError("fail-stop")


def make_runtime(**kwargs):
    machine = Machine(cores_per_node=4, numa_nodes=1)
    return OrthrusRuntime(machine=machine, app_cores=[0], validation_cores=[1], **kwargs)


class TestActivation:
    def test_active_inside_with(self):
        runtime = make_runtime()
        assert active() is None
        with runtime:
            assert active() is runtime
        assert active() is None

    def test_nested_runtimes_innermost_wins(self):
        outer, inner = make_runtime(), make_runtime()
        with outer:
            with inner:
                assert active() is inner
            assert active() is outer

    def test_reentrant_same_runtime_unwinds_correctly(self):
        # The same runtime entered twice must pop one level per exit; a
        # remove()-based exit would pop the *outermost* entry first and
        # deactivate the runtime while still logically inside it.
        runtime = make_runtime()
        with runtime:
            with runtime:
                assert active() is runtime
            assert active() is runtime
        assert active() is None

    def test_out_of_order_exit_rejected(self):
        first, second = make_runtime(), make_runtime()
        first.__enter__()
        second.__enter__()
        with pytest.raises(ConfigurationError):
            first.__exit__(None, None, None)
        # The stack is untouched by the failed exit; unwind properly.
        assert active() is second
        second.__exit__(None, None, None)
        first.__exit__(None, None, None)
        assert active() is None

    def test_exit_without_enter_rejected(self):
        with pytest.raises(ConfigurationError):
            make_runtime().__exit__(None, None, None)


class TestConfiguration:
    def test_bad_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            make_runtime(mode="warp")

    def test_bad_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            make_runtime(detection_policy="shrug")

    def test_default_validation_core_chosen_automatically(self):
        runtime = OrthrusRuntime(machine=Machine(cores_per_node=2, numa_nodes=1))
        assert runtime.scheduler.validation_cores[0].core_id == 1


class TestDetectionPolicy:
    def test_flag_policy_records_and_continues(self):
        machine = Machine(cores_per_node=4, numa_nodes=1)
        machine.arm(0, Fault(unit=Unit.ALU, kind=FaultKind.BITFLIP, bit=5))
        runtime = OrthrusRuntime(machine=machine, app_cores=[0], validation_cores=[1])
        with runtime:
            ptr = runtime.new(1)
            incr(ptr)
            incr(ptr)  # keeps running after the first detection
        assert runtime.detections == 2

    def test_abort_policy_raises(self):
        machine = Machine(cores_per_node=4, numa_nodes=1)
        machine.arm(0, Fault(unit=Unit.ALU, kind=FaultKind.BITFLIP, bit=5))
        runtime = OrthrusRuntime(
            machine=machine,
            app_cores=[0],
            validation_cores=[1],
            detection_policy="abort",
        )
        with runtime:
            ptr = runtime.new(1)
            with pytest.raises(ValidationMismatch):
                incr(ptr)

    def test_reset_report(self):
        machine = Machine(cores_per_node=4, numa_nodes=1)
        machine.arm(0, Fault(unit=Unit.ALU, kind=FaultKind.BITFLIP, bit=5))
        runtime = OrthrusRuntime(machine=machine, app_cores=[0], validation_cores=[1])
        with runtime:
            incr(runtime.new(1))
        runtime.reset_report()
        assert runtime.detections == 0


class TestFailStop:
    def test_closure_exception_propagates(self):
        runtime = make_runtime()
        with runtime:
            with pytest.raises(RuntimeError):
                boom()

    def test_crashed_closure_window_closed(self):
        runtime = make_runtime()
        with runtime:
            with pytest.raises(RuntimeError):
                boom()
        assert runtime.reclaimer.open_windows == 0


class TestReclamationWiring:
    def test_inline_mode_reclaims_promptly(self):
        runtime = make_runtime(reclaim_batch=1)
        with runtime:
            ptr = runtime.new(0)
            for _ in range(10):
                incr(ptr)
        runtime.reclaimer.reclaim_now()
        # Only live versions (plus their headers) remain.
        assert runtime.heap.stale_bytes == 0

    def test_queued_mode_holds_versions_until_validated(self):
        runtime = make_runtime(mode="queued", reclaim_batch=1)
        with runtime:
            ptr = runtime.new(0)
            for _ in range(10):
                incr(ptr)
            held = runtime.heap.stale_bytes
            assert held > 0
            runtime.drain()
        runtime.reclaimer.reclaim_now()
        assert runtime.heap.stale_bytes == 0


class TestBoundedQueuedMode:
    def test_reject_policy_drops_and_closes_windows(self):
        runtime = make_runtime(
            mode="queued", queue_capacity=3, overflow_policy="reject"
        )
        with runtime:
            ptr = runtime.new(0)
            for _ in range(10):
                incr(ptr)
        # 3 queued, 7 rejected — every rejected window must be closed.
        assert runtime.queues.pending == 3
        assert runtime.queues.drops == {"capacity": 7}
        assert runtime.reclaimer.open_windows == 3
        assert runtime.drain() == 3

    def test_drop_oldest_keeps_freshest_logs(self):
        runtime = make_runtime(
            mode="queued", queue_capacity=3, overflow_policy="drop-oldest"
        )
        with runtime:
            ptr = runtime.new(0)
            for _ in range(10):
                incr(ptr)
            pending = runtime.queues.queues[0]._logs
            assert [log.seq for log in pending] == [8, 9, 10]
        assert runtime.queues.drops == {"evicted-oldest": 7}
        assert runtime.drain() == 3
        assert runtime.reclaimer.open_windows == 0

    def test_block_producer_validates_inline(self):
        runtime = make_runtime(
            mode="queued", queue_capacity=3, overflow_policy="block-producer"
        )
        with runtime:
            ptr = runtime.new(0)
            for _ in range(10):
                incr(ptr)
        # Overflow beyond capacity was validated on the producer's dime:
        # nothing dropped, nothing lost.
        assert runtime.queues.pending == 3
        assert runtime.queues.drops == {}
        assert len(runtime.outcomes) == 7
        assert runtime.drain() == 3
        assert runtime.detections == 0

    def test_unbounded_default_never_drops(self):
        runtime = make_runtime(mode="queued")
        with runtime:
            ptr = runtime.new(0)
            for _ in range(10):
                incr(ptr)
            assert runtime.queues.pending == 10
        assert runtime.queues.drops == {}


class TestCoreBinding:
    def test_bound_core_used_for_app_execution(self):
        captured = []
        runtime = make_runtime()
        runtime._on_log = lambda log: captured.append(log.core_id)
        with runtime:
            ptr = runtime.new(0)
            with runtime.bind_core(2):
                incr(ptr)
            incr(ptr)
        assert captured[0] == 2
        assert captured[1] == 0  # default scheduler pick

    def test_binding_restores_previous(self):
        runtime = make_runtime()
        with runtime.bind_core(2):
            with runtime.bind_core(3):
                assert runtime._bound.core_id == 3
            assert runtime._bound.core_id == 2


class TestSafeModePolicy:
    def test_must_hold_only_externalizing(self):
        policy = SafeModePolicy.strict({"kv.get"})
        assert policy.must_hold("kv.get")
        assert not policy.must_hold("kv.set")

    def test_off_policy_never_holds(self):
        assert not SafeModePolicy.off().must_hold("kv.get")


class TestRuntimeHelpers:
    def test_new_allocates_outside_closures(self):
        runtime = make_runtime()
        ptr = runtime.new({"k": "v"})
        assert ptr.load() == {"k": "v"}

    def test_receive_installs_transported_checksum(self):
        from repro.memory.checksum import checksum_of

        runtime = make_runtime()
        ptr = runtime.receive("payload", checksum_of("payload"))
        assert runtime.heap.latest(ptr.obj_id).checksum == checksum_of("payload")
