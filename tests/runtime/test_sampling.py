"""Adaptive and random sampler behaviour (§3.5)."""

import pytest

from repro.closures.log import ClosureLog
from repro.machine.instruction import Trace
from repro.machine.units import Unit
from repro.runtime.sampling import (
    AdaptiveSampler,
    AlwaysSampler,
    RandomSampler,
    SamplerConfig,
)


def make_log(name="op", caller="ctl", units=(Unit.ALU,)):
    trace = Trace()
    for unit in units:
        trace.unit_counts[unit] = 1
    return ClosureLog(seq=1, closure_name=name, caller=caller, trace=trace)


CFG = SamplerConfig(delay_threshold=1.0, staleness_threshold=10.0)


class TestRateControl:
    def test_starts_at_full_rate(self):
        assert AdaptiveSampler(CFG).rate == 1.0

    def test_high_delay_decreases_rate(self):
        sampler = AdaptiveSampler(CFG)
        sampler.observe_delay(5.0)
        assert sampler.rate < 1.0

    def test_low_delay_recovers_rate(self):
        sampler = AdaptiveSampler(CFG)
        for _ in range(10):
            sampler.observe_delay(5.0)
        degraded = sampler.rate
        for _ in range(50):
            sampler.observe_delay(0.0)
        assert sampler.rate > degraded

    def test_rate_never_below_floor(self):
        sampler = AdaptiveSampler(CFG)
        for _ in range(200):
            sampler.observe_delay(100.0)
        assert sampler.rate >= CFG.min_rate

    def test_rate_never_above_one(self):
        sampler = AdaptiveSampler(CFG)
        for _ in range(50):
            sampler.observe_delay(0.0)
        assert sampler.rate == 1.0

    def test_memory_trigger_decreases_rate(self):
        sampler = AdaptiveSampler(CFG)
        sampler.observe_memory(used_bytes=200, budget_bytes=100)
        assert sampler.rate < 1.0

    def test_memory_trigger_recovers_below_low_water(self):
        sampler = AdaptiveSampler(CFG)
        sampler.observe_memory(200, 100)
        degraded = sampler.rate
        for _ in range(10):
            sampler.observe_memory(10, 100)
        assert sampler.rate > degraded

    def test_zero_budget_ignored(self):
        sampler = AdaptiveSampler(CFG)
        sampler.observe_memory(100, 0)
        assert sampler.rate == 1.0


class TestAdaptiveSelection:
    def test_never_validated_pair_always_chosen(self):
        sampler = AdaptiveSampler(CFG)
        for _ in range(100):
            sampler.observe_delay(100.0)  # crush the rate
        assert sampler.should_validate(make_log(), now=0.0)

    def test_stale_pair_always_chosen(self):
        sampler = AdaptiveSampler(CFG, seed=1)
        log = make_log()
        sampler.on_validated(log, now=0.0)
        assert sampler.should_validate(log, now=CFG.staleness_threshold + 1)

    def test_recently_validated_pair_skipped_under_load(self):
        sampler = AdaptiveSampler(CFG, seed=1)
        log = make_log()
        sampler.on_validated(log, now=0.0)
        for _ in range(100):
            sampler.observe_delay(100.0)
        decisions = [sampler.should_validate(log, now=0.01) for _ in range(50)]
        assert sum(decisions) < 10

    def test_distinct_callers_tracked_separately(self):
        sampler = AdaptiveSampler(CFG, seed=1)
        sampler.on_validated(make_log(caller="a"), now=0.0)
        # Same closure from a different caller has never been validated.
        assert sampler.should_validate(make_log(caller="b"), now=0.01)

    def test_error_prone_closures_prioritized(self):
        config = SamplerConfig(delay_threshold=1.0, staleness_threshold=1000.0)
        fp_sampler = AdaptiveSampler(config, seed=3)
        alu_sampler = AdaptiveSampler(config, seed=3)
        fp_log = make_log(name="fp", units=(Unit.FPU,))
        alu_log = make_log(name="alu", units=(Unit.ALU,))
        fp_sampler.on_validated(fp_log, now=0.0)
        alu_sampler.on_validated(alu_log, now=0.0)
        for sampler in (fp_sampler, alu_sampler):
            for _ in range(20):
                sampler.observe_delay(100.0)
        fp_hits = sum(fp_sampler.should_validate(fp_log, now=500.0) for _ in range(300))
        alu_hits = sum(alu_sampler.should_validate(alu_log, now=500.0) for _ in range(300))
        assert fp_hits > alu_hits * 1.5

    def test_counters(self):
        sampler = AdaptiveSampler(CFG, seed=1)
        log = make_log()
        sampler.should_validate(log, now=0.0)
        assert sampler.chosen == 1
        assert sampler.skipped == 0

    def test_reset(self):
        sampler = AdaptiveSampler(CFG)
        log = make_log()
        sampler.on_validated(log, now=0.0)
        sampler.observe_delay(100.0)
        sampler.reset()
        assert sampler.rate == 1.0
        assert sampler.should_validate(log, now=0.01)  # recency forgotten


class TestRandomSampler:
    def test_full_rate_always_validates(self):
        sampler = RandomSampler(CFG, seed=1)
        assert all(sampler.should_validate(make_log(), 0.0) for _ in range(50))

    def test_reduced_rate_skips_proportionally(self):
        sampler = RandomSampler(CFG, seed=1)
        for _ in range(100):
            sampler.observe_delay(100.0)
        hits = sum(sampler.should_validate(make_log(), 0.0) for _ in range(1000))
        assert hits < 150  # rate floored at min_rate=0.02

    def test_no_staleness_guarantee(self):
        # The defining difference from the adaptive sampler: a stale pair
        # gets no special treatment.
        sampler = RandomSampler(CFG, seed=1)
        for _ in range(100):
            sampler.observe_delay(100.0)
        log = make_log()
        decisions = [sampler.should_validate(log, now=1e9) for _ in range(200)]
        assert sum(decisions) < 50


class TestAlwaysSampler:
    def test_always_validates(self):
        sampler = AlwaysSampler()
        assert sampler.should_validate(make_log(), 0.0)
        sampler.observe_delay(1e9)
        assert sampler.rate == 1.0
