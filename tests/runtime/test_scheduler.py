"""Scheduler and latency-tracker tests."""

import pytest

from repro.errors import ConfigurationError
from repro.machine.cpu import Machine
from repro.runtime.scheduler import LatencyTracker, Scheduler


@pytest.fixture
def machine():
    return Machine(cores_per_node=4, numa_nodes=2)


class TestScheduler:
    def test_rejects_overlapping_cores(self, machine):
        with pytest.raises(ConfigurationError):
            Scheduler(machine, app_cores=[0, 1], validation_cores=[1, 2])

    def test_rejects_empty_assignments(self, machine):
        with pytest.raises(ConfigurationError):
            Scheduler(machine, app_cores=[], validation_cores=[1])
        with pytest.raises(ConfigurationError):
            Scheduler(machine, app_cores=[0], validation_cores=[])

    def test_rejects_out_of_range_core(self, machine):
        with pytest.raises(ConfigurationError):
            Scheduler(machine, app_cores=[0], validation_cores=[99])

    def test_app_cores_round_robin(self, machine):
        scheduler = Scheduler(machine, app_cores=[0, 1], validation_cores=[2])
        ids = [scheduler.next_app_core().core_id for _ in range(4)]
        assert ids == [0, 1, 0, 1]

    def test_validation_core_differs_from_app_core(self, machine):
        scheduler = Scheduler(machine, app_cores=[0], validation_cores=[1, 2])
        for _ in range(10):
            assert scheduler.validation_core_for(0).core_id != 0

    def test_validation_prefers_same_numa_node(self, machine):
        # App on node 0 (core 1); validation cores on both nodes.
        scheduler = Scheduler(machine, app_cores=[1], validation_cores=[2, 5])
        core = scheduler.validation_core_for(1)
        assert core.numa_node == 0

    def test_validation_crosses_node_when_forced(self, machine):
        scheduler = Scheduler(machine, app_cores=[1], validation_cores=[5])
        assert scheduler.validation_core_for(1).numa_node == 1

    def test_queue_index_mapping(self, machine):
        scheduler = Scheduler(machine, app_cores=[0], validation_cores=[2, 3])
        core = scheduler.validation_core_for(0)
        index = scheduler.queue_index_for(core)
        assert scheduler.validation_cores[index] is core


class TestLatencyTracker:
    def test_global_average(self):
        tracker = LatencyTracker()
        tracker.record("a", 1.0)
        tracker.record("b", 3.0)
        assert tracker.global_average == 2.0

    def test_window_is_last_eight(self):
        tracker = LatencyTracker()
        for value in range(20):
            tracker.record("a", float(value))
        assert tracker.closure_average("a") == sum(range(12, 20)) / 8

    def test_slow_closure_flagged_for_help(self):
        tracker = LatencyTracker(help_ratio=1.5)
        for _ in range(8):
            tracker.record("fast", 1.0)
        for _ in range(8):
            tracker.record("slow", 100.0)
        assert tracker.closures_needing_help() == ["slow"]

    def test_no_help_without_full_window(self):
        tracker = LatencyTracker()
        tracker.record("slow", 1000.0)
        tracker.record("fast", 1.0)
        assert tracker.closures_needing_help() == []

    def test_invalid_ratio_rejected(self):
        with pytest.raises(ConfigurationError):
            LatencyTracker(help_ratio=1.0)

    def test_unknown_closure_average_zero(self):
        assert LatencyTracker().closure_average("none") == 0.0
