"""Third-core arbitration: who is lying, the APP core or the validator?"""

from repro.closures.annotation import closure
from repro.closures.context import ops
from repro.machine.cpu import Machine
from repro.machine.faults import Fault, FaultKind
from repro.machine.instruction import Site
from repro.machine.units import Unit
from repro.obs import Observability
from repro.response.arbiter import Arbiter
from repro.runtime.orthrus import OrthrusRuntime


@closure(name="arb.bump")
def bump(ptr):
    value = ptr.load()
    ptr.store(ops().alu.add(value, 1))
    return value + 1


ADD_FAULT = Fault(
    unit=Unit.ALU, kind=FaultKind.BITFLIP, site=Site("arb.bump", "add", 0), bit=5
)


def run_with_fault(faulty_core: int):
    """One bump() on app core 0 with ``faulty_core`` armed; inline
    validation on core 2 flags the mismatch either way."""
    machine = Machine(cores_per_node=4, numa_nodes=1, seed=1)
    runtime = OrthrusRuntime(
        machine=machine, app_cores=[0, 1], validation_cores=[2], mode="inline"
    )
    logs = []
    runtime._on_log = logs.append
    ptr = runtime.new(0)
    machine.arm(faulty_core, ADD_FAULT)
    with runtime, runtime.bind_core(0):
        bump(ptr)
    return runtime, machine, logs


def arbitrate(runtime, machine, logs, referee_id: int, obs=None):
    event = runtime.report.first
    assert event is not None and event.kind == "mismatch"
    log = next(entry for entry in logs if entry.seq == event.seq)
    arbiter = Arbiter(runtime.heap, obs=obs)
    return arbiter.arbitrate(log, event, machine.core(referee_id))


class TestVerdicts:
    def test_faulty_app_core_implicated(self):
        runtime, machine, logs = run_with_fault(0)
        verdict = arbitrate(runtime, machine, logs, referee_id=3)
        assert verdict.suspect == "app"
        assert verdict.suspect_core == 0
        assert verdict.conclusive
        assert verdict.referee_core == 3

    def test_faulty_validation_core_implicated(self):
        # The APP record is clean; the validator's re-execution on armed
        # core 2 diverged.  The referee agrees with the APP record, so the
        # validation core is the outlier.
        runtime, machine, logs = run_with_fault(2)
        verdict = arbitrate(runtime, machine, logs, referee_id=3)
        assert verdict.suspect == "validator"
        assert verdict.suspect_core == 2
        assert verdict.conclusive

    def test_referee_equal_to_app_core_is_inconclusive(self):
        # Re-execution on the same core that produced the log is refused
        # (it would agree with its own defect); the arbiter reports it as
        # an inconclusive verdict rather than crashing the response path.
        runtime, machine, logs = run_with_fault(0)
        verdict = arbitrate(runtime, machine, logs, referee_id=0)
        assert verdict.suspect == "inconclusive"
        assert verdict.suspect_core == -1
        assert not verdict.conclusive
        assert "failed" in verdict.detail

    def test_verdict_serializes(self):
        runtime, machine, logs = run_with_fault(0)
        verdict = arbitrate(runtime, machine, logs, referee_id=3)
        data = verdict.to_dict()
        assert data["suspect"] == "app"
        assert data["seq"] == verdict.seq
        assert data["closure"] == "arb.bump"


class TestInstrumentation:
    def test_arbitration_counter_labeled_by_suspect(self):
        obs = Observability(trace=True)
        runtime, machine, logs = run_with_fault(0)
        arbitrate(runtime, machine, logs, referee_id=3, obs=obs)
        assert obs.registry.value(
            "orthrus_arbitrations_total", {"suspect": "app"}
        ) == 1.0
        kinds = {event.kind for event in obs.tracer}
        assert "response.arbitrate" in kinds
