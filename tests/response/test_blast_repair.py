"""Blast-radius analysis and in-place repair over a small closure graph."""

from repro.closures.annotation import closure
from repro.closures.context import ops
from repro.machine.cpu import Machine
from repro.machine.faults import Fault, FaultKind
from repro.machine.instruction import Site
from repro.machine.units import Unit
from repro.response.blast import BlastRadiusAnalyzer
from repro.response.repair import Repairer
from repro.runtime.orthrus import OrthrusRuntime


@closure(name="blast.put")
def put(ptr, v):
    ptr.store(ops().alu.add(v, 0))
    return v


@closure(name="blast.mix")
def mix(dst, src):
    dst.store(ops().alu.add(src.load(), 1))


PUT_FAULT = Fault(
    unit=Unit.ALU, kind=FaultKind.BITFLIP, site=Site("blast.put", "add", 0), bit=6
)


def build_graph(arm_second_put=False):
    """seq1: put(a,1)@core0 (trusted) — seq2: put(a,2)@core0 (suspect) —
    seq3: mix(b,a)@core1 (derived) — seq4: put(c,9)@core1 (independent)."""
    machine = Machine(cores_per_node=4, numa_nodes=1, seed=1)
    runtime = OrthrusRuntime(
        machine=machine, app_cores=[0, 1], validation_cores=[2, 3], mode="inline"
    )
    logs = []
    runtime._on_log = logs.append
    a, b, c = runtime.new(0), runtime.new(0), runtime.new(0)
    with runtime:
        with runtime.bind_core(0):
            put(a, 1)
            if arm_second_put:
                machine.arm(0, PUT_FAULT)
            put(a, 2)
            machine.disarm_all()
        with runtime.bind_core(1):
            mix(b, a)
            put(c, 9)
    return runtime, machine, logs, (a, b, c)


class TestBlastRadius:
    def test_taint_cone_direct_and_derived(self):
        runtime, _, logs, (a, b, c) = build_graph()
        since = logs[1].seq
        blast = BlastRadiusAnalyzer(runtime.heap).analyze(logs, 0, since)
        assert blast.affected_seqs == [logs[1].seq, logs[2].seq]
        assert a.obj_id in blast.tainted_objects
        assert b.obj_id in blast.tainted_objects
        assert c.obj_id not in blast.tainted_objects
        assert blast.unrecoverable_versions == []

    def test_since_seq_bounds_the_walk_on_the_left(self):
        runtime, _, logs, _ = build_graph()
        blast = BlastRadiusAnalyzer(runtime.heap).analyze(logs, 0, logs[1].seq)
        assert logs[0].seq not in blast.affected_seqs
        # scanned versions exclude the trusted prefix too
        in_window = [log for log in logs if log.seq >= logs[1].seq]
        assert blast.versions_scanned == sum(
            len(log.output_versions) for log in in_window
        )

    def test_seed_objects_extend_the_cone(self):
        runtime, _, logs, (_, _, c) = build_graph()
        blast = BlastRadiusAnalyzer(runtime.heap).analyze(
            logs, 0, logs[1].seq, seed_objects={c.obj_id}
        )
        assert logs[3].seq in blast.affected_seqs

    def test_reclaimed_tainted_version_is_unrecoverable(self):
        runtime, _, logs, _ = build_graph()
        analyzer = BlastRadiusAnalyzer(runtime.heap)
        blast = analyzer.analyze(logs, 0, logs[1].seq)
        victim = blast.tainted_versions[0]
        # Simulate the version having left the reclamation window before
        # the response layer could pause the reclaimer.
        from repro.memory.version import RECLAIMED

        runtime.heap._versions[victim].value = RECLAIMED
        again = analyzer.analyze(logs, 0, logs[1].seq)
        assert victim in again.unrecoverable_versions


class TestRepairer:
    def healthy(self, machine, exclude=(0,)):
        return [
            machine.core(i) for i in range(len(machine)) if i not in exclude
        ]

    def test_repairs_corrupted_and_derived_versions_in_place(self):
        runtime, machine, logs, (a, b, _) = build_graph(arm_second_put=True)
        heap = runtime.heap
        assert heap.latest(a.obj_id).value != 2  # the fault really landed
        result = Repairer(heap).repair(
            logs, suspect_core=0, since_seq=logs[1].seq,
            healthy_cores=self.healthy(machine),
        )
        assert result.complete
        assert heap.latest(a.obj_id).value == 2
        assert heap.latest(b.obj_id).value == 3  # derived value recomputed
        assert len(result.versions_repaired) == len(result.versions_corrupted) == 2
        assert result.rounds >= 1

    def test_repair_is_idempotent_on_a_clean_graph(self):
        runtime, machine, logs, (a, b, c) = build_graph()
        heap = runtime.heap
        result = Repairer(heap).repair(
            logs, suspect_core=0, since_seq=logs[1].seq,
            healthy_cores=self.healthy(machine),
        )
        assert result.complete
        assert result.versions_corrupted == []
        assert heap.latest(a.obj_id).value == 2
        assert heap.latest(b.obj_id).value == 3
        assert heap.latest(c.obj_id).value == 9

    def test_no_healthy_cores_marks_repair_incomplete(self):
        runtime, machine, logs, _ = build_graph(arm_second_put=True)
        result = Repairer(runtime.heap).repair(
            logs, suspect_core=0, since_seq=logs[1].seq, healthy_cores=[]
        )
        assert not result.complete
        assert result.failed_seqs
