"""End-to-end incident episodes: inject → detect → quarantine → repair."""

import pytest

from repro.errors import ConfigurationError
from repro.harness.incident import (
    IncidentConfig,
    misdirected_fault,
    run_incident,
    value_fault,
)
from repro.harness.pipeline import PipelineConfig, run_orthrus_server
from repro.harness.scenarios import lsmtree_scenario, memcached_scenario
from repro.machine.faults import Fault, FaultKind
from repro.machine.instruction import Site
from repro.machine.units import Unit
from repro.obs import Observability
from repro.response import ResponseConfig
from repro.response.report import IncidentReport


@pytest.fixture(scope="module")
def value_incident():
    """Persistent SIMD value fault on app core 0, memcached."""
    return run_incident(
        memcached_scenario(n_keys=40),
        IncidentConfig(n_ops=120, fault=value_fault()),
    )


@pytest.fixture(scope="module")
def misdirected_incident():
    """Persistent ALU hash fault: writes land on the wrong objects."""
    return run_incident(
        memcached_scenario(n_keys=40),
        IncidentConfig(n_ops=120, fault=misdirected_fault()),
    )


class TestValueFaultEpisode:
    def test_attribution_blames_the_injected_core(self, value_incident):
        assert value_incident.attribution_correct
        assert value_incident.report.faulty_core == 0

    def test_only_the_faulty_core_is_quarantined(self, value_incident):
        assert value_incident.report.quarantined_cores == [0]

    def test_arbitration_implicated_the_app_side(self, value_incident):
        assert value_incident.report.arbitrations.get("app", 0) >= 2
        assert value_incident.report.detections >= 2

    def test_blast_radius_found_corruption_and_repair_fixed_it(
        self, value_incident
    ):
        report = value_incident.report
        assert report.versions_corrupted > 0
        assert report.versions_repaired == report.versions_corrupted
        assert report.versions_unrecoverable == 0
        assert report.repair_complete

    def test_heap_byte_identical_to_fault_free_run(self, value_incident):
        assert value_incident.repaired
        assert value_incident.final_digest == value_incident.reference_digest

    def test_timeline_orders_the_response(self, value_incident):
        kinds = [entry.kind for entry in value_incident.report.timeline]
        assert kinds.index("detection") < kinds.index("quarantine")
        assert kinds.index("quarantine") < kinds.index("repair")
        assert kinds.index("reclamation-paused") < kinds.index(
            "reclamation-resumed"
        )
        assert kinds[-1] == "report"

    def test_reclamation_resumed_after_finalize(self, value_incident):
        assert not value_incident.runtime.reclaimer.paused

    def test_finalize_is_single_shot(self, value_incident):
        with pytest.raises(ConfigurationError):
            value_incident.coordinator.finalize()

    def test_report_round_trips_through_json(self, value_incident):
        report = value_incident.report
        restored = IncidentReport.from_json(report.to_json(indent=2))
        assert restored.to_dict() == report.to_dict()

    def test_summary_lines_render(self, value_incident):
        text = "\n".join(value_incident.report.summary_lines())
        assert "faulty core" in text
        assert "repair complete" in text


class TestMisdirectedFaultEpisode:
    def test_repair_walks_object_taint_to_the_true_targets(
        self, misdirected_incident
    ):
        report = misdirected_incident.report
        # Misdirected writes leave the true target without a corrupted
        # version of its own — restoring it is object-level repair.
        assert report.objects_restored > 0
        assert misdirected_incident.repaired

    def test_attribution_still_correct(self, misdirected_incident):
        assert misdirected_incident.attribution_correct
        assert misdirected_incident.report.quarantined_cores == [0]


class TestValidatorFaultEpisode:
    def test_faulty_validation_core_quarantined_no_repair_needed(self):
        result = run_incident(
            memcached_scenario(n_keys=40),
            IncidentConfig(n_ops=120, faulty_core=2, fault=value_fault()),
        )
        report = result.report
        assert report.arbitrations.get("validator", 0) >= 2
        assert report.quarantined_cores == [2]
        assert result.attribution_correct
        # User data was never corrupted: the divergences came from the
        # validator's own re-executions.
        assert report.versions_corrupted == 0
        assert result.repaired


class TestCleanEpisode:
    def test_unarmed_run_produces_an_empty_incident(self):
        result = run_incident(
            memcached_scenario(n_keys=40),
            # arm_after beyond the op stream: the fault never arms
            IncidentConfig(n_ops=60, fault=value_fault(), arm_after=10_000),
        )
        report = result.report
        assert report.detections == 0
        assert report.faulty_core == -1
        assert report.quarantined_cores == []
        assert result.repaired


class TestProbation:
    def test_transient_core_earns_readmission(self):
        result = run_incident(
            memcached_scenario(n_keys=40),
            IncidentConfig(n_ops=120, fault=value_fault(), probation=True),
        )
        assert result.readmitted == [0]
        assert result.coordinator.quarantine.state(0) == "in-service"
        assert result.runtime.scheduler.in_service(0)


class TestLsmTreeEpisode:
    def test_lsm_value_fault_repaired_byte_identical(self):
        result = run_incident(
            lsmtree_scenario(n_keys=40),
            IncidentConfig(n_ops=120, fault=value_fault(closure="lsm.put")),
        )
        assert result.attribution_correct
        assert result.report.versions_repaired > 0
        assert result.repaired

    def test_lsm_misdirected_fault_with_probation(self):
        # Regression: (a) delete-heavy replays (lsm.flush) must compare
        # raw object ids against the log's canonicalized delete records —
        # spurious "unrestorable" objects made repair report incomplete;
        # (b) probation probes replay retained logs *after* finalize, so
        # the evidence hold must outlive the deferred reclamation pass.
        result = run_incident(
            lsmtree_scenario(),
            IncidentConfig(
                n_ops=200,
                seed=1,
                fault=misdirected_fault(closure="lsm.put"),
                probation=True,
            ),
        )
        assert result.attribution_correct
        assert result.repaired
        assert result.report.repair_complete
        assert result.coordinator.last_repair.objects_unrestorable == []
        assert result.readmitted == [result.injected_core]
        assert not result.runtime.reclaimer.paused


class TestObservability:
    @pytest.fixture(scope="class")
    def observed(self):
        obs = Observability(trace=True)
        result = run_incident(
            memcached_scenario(n_keys=40),
            IncidentConfig(
                n_ops=120, fault=value_fault(), probation=True, obs=obs
            ),
        )
        return obs, result

    def test_response_counter_families_populated(self, observed):
        obs, result = observed
        registry = obs.registry
        assert registry.value("orthrus_quarantines_total", {"core": "0"}) == 1.0
        assert registry.value("orthrus_arbitrations_total", {"suspect": "app"}) >= 2.0
        assert registry.value("orthrus_repair_reexecutions_total") >= 1.0
        assert registry.value(
            "orthrus_repair_versions_total", {"result": "repaired"}
        ) == float(result.report.versions_repaired)
        assert registry.value(
            "orthrus_probation_probes_total", {"result": "pass"}
        ) >= 1.0
        assert registry.value("orthrus_readmissions_total") == 1.0

    def test_quarantined_cores_gauge_reflects_readmission(self, observed):
        obs, _ = observed
        # probation re-admitted the core, so the live gauge reads zero
        assert obs.registry.value("orthrus_quarantined_cores") == 0.0

    def test_response_trace_events_emitted(self, observed):
        obs, _ = observed
        kinds = {event.kind for event in obs.tracer}
        for expected in (
            "response.arbitrate",
            "response.quarantine",
            "response.probe",
            "response.readmit",
            "response.repair",
            "response.report",
        ):
            assert expected in kinds, expected

    def test_snapshot_carries_response_families(self, observed):
        obs, _ = observed
        names = {family["name"] for family in obs.registry.snapshot()["metrics"]}
        assert "orthrus_quarantines_total" in names
        assert "orthrus_repair_versions_total" in names


class TestPipelineIntegration:
    def test_orthrus_driver_attaches_response_layer(self):
        scenario = memcached_scenario(n_keys=40)
        config = PipelineConfig(seed=2, response=ResponseConfig())
        config.deferred_faults = (
            (0, Fault(unit=Unit.SIMD, kind=FaultKind.BITFLIP, bit=3,
                      site=Site("mc.set", "vsum", 0))),
        )
        result = run_orthrus_server(scenario, 200, config)
        assert result.incident is not None
        assert result.incident.detections >= 1
        assert result.incident.faulty_core == 0

    def test_no_response_config_leaves_incident_unset(self):
        result = run_orthrus_server(
            memcached_scenario(n_keys=40), 100, PipelineConfig(seed=2)
        )
        assert result.incident is None
