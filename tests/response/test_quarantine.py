"""Quarantine state machine: health scores, pool removal, probation."""

import pytest

from repro.closures.annotation import closure
from repro.closures.context import ops
from repro.errors import ConfigurationError
from repro.machine.cpu import Machine
from repro.machine.faults import Fault, FaultKind
from repro.machine.instruction import Site
from repro.machine.units import Unit
from repro.memory.heap import VersionedHeap
from repro.response.quarantine import (
    IN_SERVICE,
    PROBATION,
    QUARANTINED,
    QuarantineConfig,
    QuarantineManager,
)
from repro.runtime.orthrus import OrthrusRuntime
from repro.runtime.scheduler import Scheduler


@closure(name="quar.bump")
def bump(ptr):
    value = ptr.load()
    ptr.store(ops().alu.add(value, 1))
    return value + 1


BUMP_FAULT = Fault(
    unit=Unit.ALU, kind=FaultKind.BITFLIP, site=Site("quar.bump", "add", 0), bit=4
)


def make_manager(app=(0, 1), val=(2, 3), config=None):
    machine = Machine(cores_per_node=4, numa_nodes=1, seed=1)
    scheduler = Scheduler(machine, list(app), list(val))
    manager = QuarantineManager(machine, scheduler, VersionedHeap(), config)
    return manager, machine, scheduler


def runtime_with_logs(n=4, core_id=1):
    """Real validated-clean closure logs, the probe material."""
    machine = Machine(cores_per_node=4, numa_nodes=1, seed=1)
    runtime = OrthrusRuntime(
        machine=machine, app_cores=[0, 1], validation_cores=[2, 3], mode="inline"
    )
    logs = []
    runtime._on_log = logs.append
    ptr = runtime.new(0)
    with runtime, runtime.bind_core(core_id):
        for _ in range(n):
            bump(ptr)
    assert runtime.detections == 0
    return runtime, machine, logs


class TestConfig:
    def test_defaults_valid(self):
        QuarantineConfig().validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"fault_threshold": 0.0},
            {"fault_weight": -1.0},
            {"clean_decay": 1.5},
            {"clean_decay": -0.1},
            {"probation_probes": 0},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            QuarantineConfig(**kwargs).validate()


class TestHealthScores:
    def test_single_fault_below_threshold_keeps_core_in_service(self):
        manager, machine, scheduler = make_manager()
        assert manager.record_fault(0, when=1.0, seq=5) is False
        assert manager.state(0) == IN_SERVICE
        assert scheduler.in_service(0)
        assert not machine.core(0).quarantined

    def test_threshold_crossing_quarantines(self):
        manager, machine, scheduler = make_manager()
        manager.record_fault(0, when=1.0, seq=5)
        assert manager.record_fault(0, when=2.0, seq=9) is True
        assert manager.state(0) == QUARANTINED
        assert manager.quarantined == [0]
        assert not scheduler.in_service(0)
        assert machine.core(0).quarantined
        health = manager.health(0)
        assert health.first_fault_time == 1.0
        assert health.first_fault_seq == 5

    def test_validation_core_pulled_from_validator_pool(self):
        manager, machine, scheduler = make_manager()
        manager.record_fault(2, when=1.0)
        manager.record_fault(2, when=2.0)
        assert manager.quarantined == [2]
        assert not scheduler.in_service(2)

    def test_clean_decay_ages_out_transients(self):
        manager, _, _ = make_manager(config=QuarantineConfig(clean_decay=0.5))
        manager.record_fault(0, when=1.0)
        manager.record_clean(0)  # 1.0 -> 0.5
        manager.record_fault(0, when=2.0)  # 1.5 < threshold 2.0
        assert manager.state(0) == IN_SERVICE
        manager.record_fault(0, when=3.0)  # 2.5 >= 2.0
        assert manager.state(0) == QUARANTINED

    def test_default_config_never_decays(self):
        manager, _, _ = make_manager()
        manager.record_fault(0, when=1.0)
        for _ in range(50):
            manager.record_clean(0)
        manager.record_fault(0, when=9.0)
        assert manager.state(0) == QUARANTINED

    def test_first_fault_seq_keeps_minimum(self):
        manager, _, _ = make_manager()
        manager.record_fault(0, when=1.0, seq=20)
        manager.record_fault(0, when=2.0, seq=7)
        assert manager.health(0).first_fault_seq == 7

    def test_top_suspect_prefers_quarantined_then_score(self):
        manager, _, _ = make_manager()
        assert manager.top_suspect() is None
        manager.record_fault(1, when=1.0)
        manager.record_fault(0, when=1.5)
        manager.record_fault(0, when=2.0)  # quarantined
        assert manager.top_suspect().core_id == 0


class TestLastCoreRefusal:
    def test_last_app_core_held_in_service(self):
        manager, machine, scheduler = make_manager(app=(0,), val=(1,))
        manager.record_fault(0, when=1.0)
        assert manager.record_fault(0, when=2.0) is False
        health = manager.health(0)
        assert health.held_in_service
        assert health.state == IN_SERVICE
        assert scheduler.in_service(0)
        assert not machine.core(0).quarantined

    def test_last_validation_core_held_in_service(self):
        manager, _, scheduler = make_manager(app=(0, 1), val=(2,))
        manager.record_fault(2, when=1.0)
        assert manager.record_fault(2, when=2.0) is False
        assert manager.health(2).held_in_service
        assert scheduler.in_service(2)


class TestProbation:
    def quarantined_manager(self, probes=2):
        runtime, machine, logs = runtime_with_logs(n=4, core_id=1)
        manager = QuarantineManager(
            machine,
            runtime.scheduler,
            runtime.heap,
            QuarantineConfig(probation_probes=probes),
        )
        manager.record_fault(0, when=1.0)
        manager.record_fault(0, when=2.0)
        assert manager.state(0) == QUARANTINED
        return manager, machine, runtime, logs

    def test_probe_of_in_service_core_rejected(self):
        manager, _, _ = make_manager()
        with pytest.raises(ConfigurationError):
            manager.probe(0, log=None)

    def test_consecutive_clean_probes_readmit(self):
        manager, machine, runtime, logs = self.quarantined_manager(probes=2)
        assert manager.probe(0, logs[0]) is True
        assert manager.state(0) == PROBATION
        assert manager.probe(0, logs[1]) is True
        assert manager.state(0) == IN_SERVICE
        assert runtime.scheduler.in_service(0)
        assert not machine.core(0).quarantined
        assert manager.health(0).score == 0.0

    def test_failed_probe_resets_the_streak(self):
        manager, machine, runtime, logs = self.quarantined_manager(probes=2)
        assert manager.probe(0, logs[0]) is True
        machine.arm(0, BUMP_FAULT)  # the defect is still there
        assert manager.probe(0, logs[1]) is False
        assert manager.health(0).probes_passed == 0
        assert manager.state(0) == PROBATION
        machine.disarm_all()
        manager.probe(0, logs[2])
        manager.probe(0, logs[3])
        assert manager.state(0) == IN_SERVICE

    def test_probe_with_same_core_log_fails_safely(self):
        # A log produced on the quarantined core itself is not valid probe
        # material (re-execution on the producing core is refused); the
        # probe counts as failed rather than raising.
        runtime, machine, logs = runtime_with_logs(n=2, core_id=0)
        manager = QuarantineManager(
            machine, runtime.scheduler, runtime.heap, QuarantineConfig()
        )
        manager.record_fault(0, when=1.0)
        manager.record_fault(0, when=2.0)
        assert manager.probe(0, logs[0]) is False
        assert manager.state(0) == PROBATION
