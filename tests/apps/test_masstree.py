"""Masstree application tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.masstree import MasstreeServer, mt_get, mt_scan, mt_update
from repro.machine.cpu import Machine
from repro.machine.faults import Fault, FaultKind
from repro.machine.units import Unit
from repro.runtime.orthrus import OrthrusRuntime
from repro.workloads.alex import AlexWorkload
from repro.workloads.base import Op, OpKind

from tests.apps.conftest import make_faulty_runtime


def update_op(key, value):
    return Op(OpKind.UPDATE, key, value)


def scan_op(key, count):
    return Op(OpKind.SCAN, key, count=count)


class TestFunctional:
    def test_insert_and_get(self, runtime):
        server = MasstreeServer(runtime, order=4)
        with runtime:
            server.handle(update_op(10, 100))
            assert mt_get(server.tree, 10) == 100
            assert mt_get(server.tree, 11) is None

    def test_update_in_place(self, runtime):
        server = MasstreeServer(runtime, order=4)
        with runtime:
            server.handle(update_op(10, 100))
            server.handle(update_op(10, 200))
            assert mt_get(server.tree, 10) == 200
        assert server.items() == [(10, 200)]

    def test_splits_keep_order(self, runtime):
        server = MasstreeServer(runtime, order=4)
        keys = [37, 12, 99, 5, 61, 44, 70, 2, 88, 23, 51, 8]
        with runtime:
            for key in keys:
                server.handle(update_op(key, key * 10))
        assert server.items() == sorted((k, k * 10) for k in keys)

    def test_root_grows_multiple_levels(self, runtime):
        server = MasstreeServer(runtime, order=4)
        with runtime:
            for key in range(64):
                server.handle(update_op(key, key))
        assert server.items() == [(k, k) for k in range(64)]

    def test_scan_returns_sorted_window(self, runtime):
        server = MasstreeServer(runtime, order=4)
        with runtime:
            for key in range(0, 40, 2):
                server.handle(update_op(key, key + 1))
            results = server.handle(scan_op(10, 5))
        assert results == [(10, 11), (12, 13), (14, 15), (16, 17), (18, 19)]

    def test_scan_across_leaf_boundaries(self, runtime):
        server = MasstreeServer(runtime, order=4)
        with runtime:
            for key in range(30):
                server.handle(update_op(key, key))
            results = mt_scan(server.tree, 0, 30)
        assert [k for k, _ in results] == list(range(30))

    def test_scan_beyond_end(self, runtime):
        server = MasstreeServer(runtime, order=4)
        with runtime:
            server.handle(update_op(1, 1))
            results = mt_scan(server.tree, 100, 5)
        assert results == []

    def test_load_keys_preloads(self, runtime):
        server = MasstreeServer(runtime, order=8)
        workload = AlexWorkload(n_keys=50, seed=3)
        with runtime:
            server.load_keys(workload.initial_keys())
        assert len(server.items()) == 50

    def test_clean_workload_run(self, runtime):
        server = MasstreeServer(runtime, order=8)
        workload = AlexWorkload(n_keys=60, seed=3)
        with runtime:
            server.load_keys(workload.initial_keys())
            for op in workload.ops(150):
                server.handle(op)
        assert runtime.detections == 0
        items = server.items()
        assert items == sorted(items)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 200), st.integers(0, 10**6)), min_size=1, max_size=60))
def test_masstree_matches_sorted_dict_model(pairs):
    machine = Machine(cores_per_node=4, numa_nodes=1)
    runtime = OrthrusRuntime(machine=machine, app_cores=[0], validation_cores=[1])
    server = MasstreeServer(runtime, order=4)
    model = {}
    with runtime:
        for key, value in pairs:
            mt_update(server.tree, runtime.new((key, value)))
            model[key] = value
    assert server.items() == sorted(model.items())
    assert runtime.detections == 0


class TestFaultBehaviour:
    def test_simd_descent_fault_detected(self):
        # A sign-bit lane defect flips the in-node vectorized compare and
        # sends descents down the wrong child; lower-bit defects are
        # usually masked because only the sign of the diff is consumed.
        runtime = make_faulty_runtime(
            Fault(unit=Unit.SIMD, kind=FaultKind.BITFLIP, bit=63)
        )
        server = MasstreeServer(runtime, order=4)
        detected = 0
        with runtime:
            try:
                for key in range(60):
                    server.handle(update_op(key, key))
            except Exception:
                pass
            detected = runtime.detections
        assert detected > 0

    def test_low_bit_simd_fault_usually_masked(self):
        runtime = make_faulty_runtime(
            Fault(unit=Unit.SIMD, kind=FaultKind.BITFLIP, bit=2)
        )
        server = MasstreeServer(runtime, order=4)
        with runtime:
            for key in range(40):
                server.handle(update_op(key, key))
        # Only the sign of the vectorized compare is consumed: a low-bit
        # defect rarely crosses zero, so it is a masked error (§2.1).
        assert runtime.detections == 0
        assert server.items() == [(k, k) for k in range(40)]

    def test_cache_fault_detected(self):
        runtime = make_faulty_runtime(
            Fault(unit=Unit.CACHE, kind=FaultKind.BITFLIP, bit=9, trigger_rate=0.2)
        )
        server = MasstreeServer(runtime, order=8)
        with runtime:
            try:
                for key in range(60):
                    server.handle(update_op(key, key))
            except Exception:
                pass
        assert runtime.detections > 0

    def test_no_fp_instructions_in_masstree(self):
        from repro.closures.annotation import CLOSURE_REGISTRY

        for name in ("mt.get", "mt.update", "mt.scan"):
            assert Unit.FPU not in CLOSURE_REGISTRY[name].static_units
