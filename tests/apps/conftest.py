"""Shared fixtures for application tests."""

import pytest

from repro.machine.cpu import Machine
from repro.runtime.orthrus import OrthrusRuntime


@pytest.fixture
def machine():
    return Machine(cores_per_node=4, numa_nodes=1)


@pytest.fixture
def runtime(machine):
    return OrthrusRuntime(machine=machine, app_cores=[0], validation_cores=[1])


def make_faulty_runtime(fault, core_id=0, **kwargs):
    machine = Machine(cores_per_node=4, numa_nodes=1)
    machine.arm(core_id, fault)
    return OrthrusRuntime(
        machine=machine, app_cores=[0], validation_cores=[1], **kwargs
    )
