"""Deletion semantics: LSM tombstones and Masstree lazy removal."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.lsmtree import TOMBSTONE, LsmTreeServer
from repro.apps.masstree import Masstree, MasstreeServer, mt_get, mt_remove, mt_update
from repro.machine.cpu import Machine
from repro.runtime.orthrus import OrthrusRuntime
from repro.workloads.base import Op, OpKind


def make_runtime():
    machine = Machine(cores_per_node=4, numa_nodes=1)
    return OrthrusRuntime(machine=machine, app_cores=[0], validation_cores=[1])


class TestLsmTombstones:
    def test_remove_hides_key(self, runtime):
        server = LsmTreeServer(runtime, memtable_limit=100, seed=1)
        with runtime:
            server.handle(Op(OpKind.PUT, 5, "five"))
            assert server.handle(Op(OpKind.REMOVE, 5)) == "DELETED"
            assert server.handle(Op(OpKind.GET, 5)) is None
        assert 5 not in server.items()

    def test_tombstone_shadows_older_disk_version(self, runtime):
        server = LsmTreeServer(
            runtime, memtable_limit=2, compaction_threshold=99, seed=1
        )
        with runtime:
            server.handle(Op(OpKind.PUT, 1, "v"))
            server.handle(Op(OpKind.PUT, 2, "w"))   # flush: 1,2 to disk
            server.handle(Op(OpKind.REMOVE, 1))
            assert server.handle(Op(OpKind.GET, 1)) is None  # masked by tombstone
            assert server.handle(Op(OpKind.GET, 2)) == "w"

    def test_compaction_drops_tombstoned_keys(self, runtime):
        server = LsmTreeServer(
            runtime, memtable_limit=2, compaction_threshold=2, seed=1
        )
        with runtime:
            server.handle(Op(OpKind.PUT, 1, "v"))
            server.handle(Op(OpKind.PUT, 2, "w"))
            server.handle(Op(OpKind.REMOVE, 1))
            server.handle(Op(OpKind.PUT, 3, "x"))   # triggers flush+compaction
        assert server.compactions >= 1
        merged_keys = {k for pairs, _ in server.tree.disk for k, _ in pairs}
        assert 1 not in merged_keys

    def test_reput_after_remove(self, runtime):
        server = LsmTreeServer(runtime, memtable_limit=100, seed=1)
        with runtime:
            server.handle(Op(OpKind.PUT, 7, "old"))
            server.handle(Op(OpKind.REMOVE, 7))
            server.handle(Op(OpKind.PUT, 7, "new"))
            assert server.handle(Op(OpKind.GET, 7)) == "new"

    def test_clean_removes_validate(self, runtime):
        server = LsmTreeServer(runtime, memtable_limit=100, seed=1)
        with runtime:
            for key in range(10):
                server.handle(Op(OpKind.PUT, key, str(key)))
            for key in range(0, 10, 2):
                server.handle(Op(OpKind.REMOVE, key))
        assert runtime.detections == 0
        assert set(server.items()) == {1, 3, 5, 7, 9}


class TestMasstreeRemove:
    def test_remove_existing(self, runtime):
        server = MasstreeServer(runtime, order=4)
        with runtime:
            mt_update(server.tree, runtime.new((10, 100)))
            assert mt_remove(server.tree, 10) is True
            assert mt_get(server.tree, 10) is None
        assert server.items() == []

    def test_remove_missing(self, runtime):
        server = MasstreeServer(runtime, order=4)
        with runtime:
            assert mt_remove(server.tree, 42) is False

    def test_remove_keeps_siblings(self, runtime):
        server = MasstreeServer(runtime, order=4)
        with runtime:
            for key in range(20):
                mt_update(server.tree, runtime.new((key, key)))
            mt_remove(server.tree, 7)
        assert server.items() == [(k, k) for k in range(20) if k != 7]

    def test_clean_removes_validate(self, runtime):
        server = MasstreeServer(runtime, order=4)
        with runtime:
            for key in range(16):
                mt_update(server.tree, runtime.new((key, key)))
            for key in range(0, 16, 3):
                mt_remove(server.tree, key)
        assert runtime.detections == 0


@pytest.fixture
def runtime():
    return make_runtime()


@settings(max_examples=20, deadline=None)
@given(
    st.lists(
        st.tuples(st.booleans(), st.integers(0, 30)), min_size=1, max_size=50
    )
)
def test_masstree_insert_remove_matches_dict(operations):
    runtime = make_runtime()
    server = MasstreeServer(runtime, order=4)
    model: dict[int, int] = {}
    with runtime:
        for is_insert, key in operations:
            if is_insert:
                mt_update(server.tree, runtime.new((key, key * 2)))
                model[key] = key * 2
            else:
                removed = mt_remove(server.tree, key)
                assert removed == (key in model)
                model.pop(key, None)
    assert server.items() == sorted(model.items())
    assert runtime.detections == 0
