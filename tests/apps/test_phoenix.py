"""Phoenix MapReduce tests."""

import pytest

from repro.apps.phoenix import PhoenixJob, WordCountJob, wordcount_map, wordcount_reduce
from repro.machine.faults import Fault, FaultKind
from repro.machine.instruction import Site
from repro.machine.units import Unit
from repro.workloads.wordcount import WordCountCorpus

from tests.apps.conftest import make_faulty_runtime


@pytest.fixture
def corpus():
    return WordCountCorpus(
        n_words=1200, vocabulary_size=60, words_per_chunk=200, seed=11
    )


class TestFunctional:
    def test_wordcount_matches_reference(self, runtime, corpus):
        job = WordCountJob(runtime, n_partitions=4)
        with runtime:
            result = job.run(corpus.chunks())
        assert result == corpus.reference_counts()

    def test_every_task_validated(self, runtime, corpus):
        job = WordCountJob(runtime, n_partitions=4)
        chunks = corpus.chunks()
        with runtime:
            job.run(chunks)
        assert runtime.validations == len(chunks) + 4
        assert runtime.detections == 0

    def test_partitions_are_disjoint(self, runtime, corpus):
        job = WordCountJob(runtime, n_partitions=4)
        with runtime:
            job.run(corpus.chunks())
        heap = runtime.heap
        seen = set()
        for result in job.job.reduce_outputs:
            counts = heap.latest(result.obj_id).value["counts"]
            overlap = seen & counts.keys()
            assert not overlap
            seen |= counts.keys()

    def test_single_chunk_single_partition(self, runtime):
        job = WordCountJob(runtime, n_partitions=1)
        with runtime:
            result = job.run(["a b a"])
        assert result == {"a": 2, "b": 1}

    def test_empty_chunk(self, runtime):
        job = WordCountJob(runtime, n_partitions=2)
        with runtime:
            result = job.run([""])
        assert result == {}

    def test_custom_map_reduce(self, runtime):
        # Character count rather than word count: the framework is generic.
        def char_map(o, text):
            return [(ch, 1) for ch in text.replace(" ", "")]

        def char_reduce(o, ch, values):
            total = 0
            for value in values:
                total = o.alu.add(total, value)
            return total

        job = PhoenixJob(runtime, char_map, char_reduce, n_partitions=2)
        with runtime:
            result = job.run(["ab ba"])
        assert result == {"a": 2, "b": 2}


class TestFaultBehaviour:
    def test_fp_stats_fault_detected(self, corpus):
        runtime = make_faulty_runtime(
            Fault(unit=Unit.FPU, kind=FaultKind.BITFLIP, bit=48)
        )
        job = WordCountJob(runtime, n_partitions=4)
        with runtime:
            job.run(corpus.chunks())
        assert runtime.detections > 0

    def test_map_hash_fault_detected(self, corpus):
        runtime = make_faulty_runtime(
            Fault(unit=Unit.ALU, kind=FaultKind.BITFLIP, bit=1,
                  site=Site("phx.map_task", "hash64", 0))
        )
        job = WordCountJob(runtime, n_partitions=4)
        with runtime:
            job.run(corpus.chunks())
        assert runtime.detections > 0

    def test_chunk_transfer_corruption_caught_by_checksum(self, corpus):
        runtime = make_faulty_runtime(
            Fault(unit=Unit.ALU, kind=FaultKind.BITFLIP, bit=200,
                  site=Site("phx.control.split", "copy", 0))
        )
        job = WordCountJob(runtime, n_partitions=4)
        with runtime:
            job.run(corpus.chunks())
        assert runtime.report.count("checksum") > 0

    def test_no_cache_instructions_in_phoenix(self):
        from repro.closures.annotation import CLOSURE_REGISTRY

        for name in ("phx.map_task", "phx.reduce_task"):
            assert Unit.CACHE not in CLOSURE_REGISTRY[name].static_units
