"""LSMTree application tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.lsmtree import LsmTreeServer, lsm_flush, lsm_get, lsm_put
from repro.machine.cpu import Machine
from repro.machine.faults import Fault, FaultKind
from repro.machine.units import Unit
from repro.runtime.orthrus import OrthrusRuntime
from repro.workloads.base import Op, OpKind
from repro.workloads.ycsb import YcsbWriteWorkload

from tests.apps.conftest import make_faulty_runtime


def put_op(key, value):
    return Op(OpKind.PUT, key, value)


class TestFunctional:
    def test_put_then_get_from_memtable(self, runtime):
        server = LsmTreeServer(runtime, memtable_limit=100, seed=1)
        with runtime:
            server.handle(put_op(5, "five"))
            assert server.handle(Op(OpKind.GET, 5)) == "five"

    def test_get_missing(self, runtime):
        server = LsmTreeServer(runtime, seed=1)
        with runtime:
            assert server.handle(Op(OpKind.GET, 42)) is None

    def test_overwrite_in_memtable(self, runtime):
        server = LsmTreeServer(runtime, memtable_limit=100, seed=1)
        with runtime:
            server.handle(put_op(5, "a"))
            server.handle(put_op(5, "b"))
            assert server.handle(Op(OpKind.GET, 5)) == "b"
        assert server.items() == {5: "b"}

    def test_sequence_numbers_monotonic(self, runtime):
        # The seq number is internal (not externalized by handle), but the
        # data-path operator still assigns strictly increasing values.
        server = LsmTreeServer(runtime, memtable_limit=100, seed=1)
        with runtime:
            seqs = [
                lsm_put(server.tree, runtime.new((k, str(k)))) for k in range(5)
            ]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == 5

    def test_handle_put_returns_stored(self, runtime):
        server = LsmTreeServer(runtime, memtable_limit=100, seed=1)
        with runtime:
            assert server.handle(put_op(1, "v")) == "STORED"

    def test_flush_moves_data_to_disk(self, runtime):
        server = LsmTreeServer(runtime, memtable_limit=4, seed=1)
        with runtime:
            for key in range(4):
                server.handle(put_op(key, f"v{key}"))
        assert server.flushes == 1
        assert len(server.tree.disk) == 1
        pairs, _ = server.tree.disk[0]
        assert [k for k, _ in pairs] == [0, 1, 2, 3]  # sorted

    def test_get_reads_through_to_disk(self, runtime):
        server = LsmTreeServer(runtime, memtable_limit=4, seed=1)
        with runtime:
            for key in range(4):
                server.handle(put_op(key, f"v{key}"))
            assert server.handle(Op(OpKind.GET, 2)) == "v2"

    def test_newest_block_wins_after_multiple_flushes(self, runtime):
        server = LsmTreeServer(runtime, memtable_limit=2, compaction_threshold=99, seed=1)
        with runtime:
            server.handle(put_op(1, "old"))
            server.handle(put_op(2, "x"))  # flush 1
            server.handle(put_op(1, "new"))
            server.handle(put_op(3, "y"))  # flush 2
            assert server.handle(Op(OpKind.GET, 1)) == "new"

    def test_compaction_merges_blocks(self, runtime):
        server = LsmTreeServer(runtime, memtable_limit=2, compaction_threshold=2, seed=1)
        with runtime:
            for key in range(8):
                server.handle(put_op(key % 3, f"v{key}"))
        assert server.compactions >= 1
        assert len(server.tree.disk) <= 2
        assert server.items()[2] == "v5"

    def test_clean_workload_validates(self, runtime):
        server = LsmTreeServer(runtime, memtable_limit=32, seed=2)
        model = {}
        with runtime:
            for op in YcsbWriteWorkload(n_keys=50, seed=2).ops(200):
                server.handle(op)
                model[op.key] = op.value
        assert server.items() == model
        assert runtime.detections == 0

    def test_skiplist_randomness_is_replayed(self, runtime):
        # Validation must agree even though level selection is random:
        # the random draw is recorded and replayed, never re-executed.
        server = LsmTreeServer(runtime, memtable_limit=1000, seed=9)
        with runtime:
            for key in range(50):
                server.handle(put_op(key, str(key)))
        assert runtime.detections == 0
        assert runtime.validations >= 50


@settings(max_examples=20, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 50), st.text(max_size=6)), min_size=1, max_size=50))
def test_lsm_matches_dict_model(pairs):
    machine = Machine(cores_per_node=4, numa_nodes=1)
    runtime = OrthrusRuntime(machine=machine, app_cores=[0], validation_cores=[1])
    server = LsmTreeServer(runtime, memtable_limit=8, compaction_threshold=3, seed=5)
    model = {}
    with runtime:
        for key, value in pairs:
            server.handle(put_op(key, value))
            model[key] = value
    assert server.items() == model
    assert runtime.detections == 0


class TestFaultBehaviour:
    def test_fpu_level_fault_detected(self):
        # FP corruption perturbs skiplist level selection → structural
        # divergence caught by re-execution (LSMTree's fp column, Table 2).
        runtime = make_faulty_runtime(
            Fault(unit=Unit.FPU, kind=FaultKind.BITFLIP, bit=62)
        )
        server = LsmTreeServer(runtime, memtable_limit=1000, seed=1)
        with runtime:
            try:
                for key in range(60):
                    server.handle(put_op(key, str(key)))
            except Exception:
                pass
        assert runtime.detections > 0

    def test_flush_checksum_fault_detected(self):
        from repro.machine.instruction import Site

        runtime = make_faulty_runtime(
            Fault(unit=Unit.SIMD, kind=FaultKind.BITFLIP, bit=3,
                  site=Site("lsm.flush", "vsum", 0))
        )
        server = LsmTreeServer(runtime, memtable_limit=4, seed=1)
        with runtime:
            for key in range(4):
                server.handle(put_op(key, str(key)))
        assert runtime.detections == 1

    def test_lsm_tagged_error_prone(self):
        from repro.closures.annotation import CLOSURE_REGISTRY

        assert CLOSURE_REGISTRY["lsm.put"].error_prone  # fp + simd
