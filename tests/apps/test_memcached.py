"""Memcached application tests: functional correctness + fault behaviour."""

import pytest

from repro.apps.memcached import MemcachedServer
from repro.machine.faults import Fault, FaultKind
from repro.machine.instruction import Site
from repro.machine.units import Unit
from repro.workloads.base import Op, OpKind
from repro.workloads.cachelib import CacheLibWorkload

from tests.apps.conftest import make_faulty_runtime


def set_op(key, value):
    return Op(OpKind.SET, key, value)


def get_op(key):
    return Op(OpKind.GET, key)


class TestFunctional:
    def test_set_then_get(self, runtime):
        server = MemcachedServer(runtime, n_buckets=16)
        with runtime:
            assert server.handle(set_op("k", "v")) == "STORED"
            assert server.handle(get_op("k")) == "v"

    def test_get_missing_returns_none(self, runtime):
        server = MemcachedServer(runtime, n_buckets=16)
        with runtime:
            assert server.handle(get_op("missing")) is None

    def test_overwrite(self, runtime):
        server = MemcachedServer(runtime, n_buckets=16)
        with runtime:
            server.handle(set_op("k", "v1"))
            server.handle(set_op("k", "v2"))
            assert server.handle(get_op("k")) == "v2"

    def test_remove(self, runtime):
        server = MemcachedServer(runtime, n_buckets=16)
        with runtime:
            server.handle(set_op("k", "v"))
            assert server.handle(Op(OpKind.REMOVE, "k")) == "DELETED"
            assert server.handle(get_op("k")) is None

    def test_remove_missing(self, runtime):
        server = MemcachedServer(runtime, n_buckets=16)
        with runtime:
            assert server.handle(Op(OpKind.REMOVE, "nope")) == "NOT_FOUND"

    def test_incr(self, runtime):
        server = MemcachedServer(runtime, n_buckets=16)
        with runtime:
            server.handle(set_op("counter", "10"))
            assert server.handle(Op(OpKind.INCR, "counter", "5")) == "15"
            assert server.handle(get_op("counter")) == "15"

    def test_bucket_collisions_handled(self, runtime):
        # Two buckets force heavy chaining.
        server = MemcachedServer(runtime, n_buckets=2)
        with runtime:
            for index in range(20):
                server.handle(set_op(f"key{index}", f"value{index}"))
            for index in range(20):
                assert server.handle(get_op(f"key{index}")) == f"value{index}"

    def test_matches_dict_model_under_workload(self, runtime):
        server = MemcachedServer(runtime, n_buckets=32)
        model = {}
        workload = CacheLibWorkload(n_keys=40, seed=7)
        with runtime:
            for op in workload.ops(400):
                result = server.handle(op)
                if op.kind is OpKind.SET:
                    model[op.key] = op.value
                elif op.kind is OpKind.REMOVE:
                    model.pop(op.key, None)
                elif op.kind is OpKind.GET:
                    assert result == model.get(op.key)
        assert server.items() == model

    def test_clean_run_validates_without_detection(self, runtime):
        server = MemcachedServer(runtime, n_buckets=16)
        with runtime:
            for op in CacheLibWorkload(n_keys=20, seed=1).ops(200):
                server.handle(op)
        assert runtime.detections == 0
        assert runtime.validations == 200

    def test_state_digest_stable_and_content_sensitive(self, runtime):
        server = MemcachedServer(runtime, n_buckets=16)
        with runtime:
            server.handle(set_op("k", "v"))
            d1 = server.state_digest()
            assert server.state_digest() == d1
            server.handle(set_op("k", "w"))
            assert server.state_digest() != d1

    def test_rejects_non_power_of_two_buckets(self, runtime):
        with pytest.raises(ValueError):
            MemcachedServer(runtime, n_buckets=10)


class TestFaultBehaviour:
    def test_data_path_hash_fault_detected(self):
        runtime = make_faulty_runtime(
            Fault(unit=Unit.ALU, kind=FaultKind.BITFLIP, bit=2,
                  site=Site("mc.set", "hash64", 0))
        )
        server = MemcachedServer(runtime, n_buckets=16)
        with runtime:
            for op in CacheLibWorkload(n_keys=20, seed=1).ops(100):
                server.handle(op)
        assert runtime.report.count("mismatch") > 0

    def test_control_payload_fault_caught_by_checksum(self):
        runtime = make_faulty_runtime(
            Fault(unit=Unit.ALU, kind=FaultKind.BITFLIP, bit=100,
                  site=Site("mc.control.rx", "copy", 0))
        )
        server = MemcachedServer(runtime, n_buckets=16)
        with runtime:
            for op in CacheLibWorkload(n_keys=20, seed=1).ops(100):
                server.handle(op)
        assert runtime.report.count("checksum") > 0
        assert runtime.report.count("mismatch") == 0

    def test_response_corruption_caught_client_side(self):
        runtime = make_faulty_runtime(
            Fault(unit=Unit.ALU, kind=FaultKind.BITFLIP, bit=100,
                  site=Site("mc.control.tx", "copy", 0))
        )
        server = MemcachedServer(runtime, n_buckets=16)
        with runtime:
            server.handle(set_op("k", "valuevaluevalue"))
            server.handle(get_op("k"))
        assert runtime.report.count("checksum") == 1

    def test_dispatch_fault_is_invisible_to_orthrus(self):
        # Flip the "is it a get?" comparison: a REMOVE request matches it
        # (False→True) and is silently served as a GET — the delete is
        # dropped without any checksum or re-execution divergence (§2.3).
        runtime = make_faulty_runtime(
            Fault(unit=Unit.ALU, kind=FaultKind.BITFLIP, bit=0,
                  site=Site("mc.control.dispatch", "eq", 1))
        )
        server = MemcachedServer(runtime, n_buckets=16)
        with runtime:
            server.handle(set_op("k", "v"))
            server.handle(Op(OpKind.REMOVE, "k"))
        # The remove was silently dropped: data still present, no detection.
        assert server.items() == {"k": "v"}
        assert runtime.detections == 0

    def test_simd_digest_fault_detected(self):
        runtime = make_faulty_runtime(
            Fault(unit=Unit.SIMD, kind=FaultKind.BITFLIP, bit=40,
                  site=Site("mc.set", "vsum", 0))
        )
        server = MemcachedServer(runtime, n_buckets=16)
        with runtime:
            server.handle(set_op("k", "v"))
        assert runtime.report.count("mismatch") == 1

    def test_validation_core_fault_detected_symmetrically(self):
        runtime = make_faulty_runtime(
            Fault(unit=Unit.ALU, kind=FaultKind.BITFLIP, bit=2,
                  site=Site("mc.set", "hash64", 0)),
            core_id=1,
        )
        server = MemcachedServer(runtime, n_buckets=16)
        with runtime:
            server.handle(set_op("k", "v"))
        assert runtime.detections == 1
        # The user data itself is intact (fault was on the VAL core).
        assert server.items() == {"k": "v"}
