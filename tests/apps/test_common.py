"""Packet / transfer / server-base plumbing tests."""

import pytest

from repro.apps.common import Packet, transfer, unwrap
from repro.machine.core import Core
from repro.machine.faults import Fault, FaultKind
from repro.machine.instruction import Site
from repro.machine.units import Unit
from repro.memory.checksum import crc16, deserialize, serialize


class TestPacket:
    def test_wrap_roundtrip(self):
        packet = Packet.wrap({"key": [1, 2.5, "x"]})
        value, checksum = unwrap(packet)
        assert value == {"key": [1, 2.5, "x"]}
        assert checksum == crc16(packet.data)

    def test_checksum_matches_payload(self):
        packet = Packet.wrap("payload")
        assert crc16(packet.data) == packet.checksum


class TestTransfer:
    def test_healthy_hop_preserves_bytes(self):
        packet = Packet.wrap(("k", "v"))
        moved = transfer(Core(0), packet, "hop")
        assert moved.data == packet.data
        assert moved.checksum == packet.checksum

    def test_corrupted_hop_keeps_original_crc(self):
        core = Core(0)
        core.arm(Fault(unit=Unit.ALU, kind=FaultKind.BITFLIP, bit=100,
                       site=Site("hop", "copy", 0)))
        packet = Packet.wrap(("key-123", "v" * 40))
        moved = transfer(core, packet, "hop")
        assert moved.data != packet.data        # payload corrupted...
        assert moved.checksum == packet.checksum  # ...but the CRC travelled
        assert crc16(moved.data) != moved.checksum  # so the receiver can tell

    def test_heavily_corrupted_packet_fails_to_decode(self):
        core = Core(0)
        core.arm(Fault(unit=Unit.ALU, kind=FaultKind.BITFLIP, bit=0,
                       site=Site("hop", "copy", 0)))  # hits the type tag
        packet = Packet.wrap(("k", "v"))
        moved = transfer(core, packet, "hop")
        with pytest.raises(ValueError):
            unwrap(moved)


class TestDeserialize:
    def test_roundtrip_all_shapes(self):
        values = [
            None, True, False, 0, -17, 2**80, 3.25, "text", b"bytes",
            (1, "a"), [1, [2, [3]]], {"k": (1.5, None)},
        ]
        for value in values:
            assert deserialize(serialize(value)) == value

    def test_trailing_bytes_rejected(self):
        with pytest.raises(ValueError):
            deserialize(serialize(1) + b"junk")

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            deserialize(serialize("hello")[:-2])

    def test_unknown_tag_rejected(self):
        with pytest.raises(ValueError):
            deserialize(b"Z")

    def test_absurd_length_rejected(self):
        # A corrupted length field must not trigger a giant allocation.
        bad = b"S" + (1 << 30).to_bytes(4, "little") + b"x"
        with pytest.raises(ValueError):
            deserialize(bad)
